"""Seeded, replayable chaos schedules.

A :class:`ChaosSchedule` is a declarative composite of fault events over
one run:

* :class:`KillSpec` — kill a place once the global completion counter
  reaches a threshold (the injector path, same as a user
  :class:`~repro.apgas.failure.FaultPlan`). Two kills sharing a threshold
  model near-simultaneous node deaths;
* :class:`RecoveryKillSpec` — kill a place *while a recovery pass is in
  flight*, after a given amount of recovery progress (salvaged cells on
  the in-process engines, recomputed cells on the mp engine);
* :class:`ThrottleSpec` — a slow place: every vertex executed there pays
  a small real sleep, perturbing thread interleavings and wavefront
  pacing without changing any value;
* :class:`MessageChaos` — delay / drop / duplication / reordering
  probabilities for the message layer (:mod:`repro.chaos.network`), plus
  the retry/timeout budget the mp pipe uses to survive them.

Everything is derived from a single RNG seed by :meth:`ChaosSchedule.
generate`, serializes to a plain JSON dict (:meth:`to_dict` /
:meth:`from_dict`) for replay files, and decomposes into an event list
(:meth:`events` / :meth:`from_events`) for the ddmin shrinker.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.apgas.failure import FaultPlan
from repro.util.rng import seeded_rng
from repro.util.validation import require

__all__ = [
    "KillSpec",
    "RecoveryKillSpec",
    "ThrottleSpec",
    "MessageChaos",
    "ChaosSchedule",
]


@dataclass(frozen=True)
class KillSpec:
    """Kill ``place_id`` when the completion counter reaches the threshold."""

    place_id: int
    after_completions: int

    def __post_init__(self) -> None:
        require(self.place_id >= 0, "place_id must be >= 0")
        require(self.after_completions >= 0, "after_completions must be >= 0")


@dataclass(frozen=True)
class RecoveryKillSpec:
    """Kill ``place_id`` during recovery pass ``during_pass`` (1-based),
    once that pass has made ``after_progress`` units of progress (salvaged
    cells on inline/threaded, recomputed cells on mp)."""

    place_id: int
    during_pass: int = 1
    after_progress: int = 0

    def __post_init__(self) -> None:
        require(self.place_id >= 0, "place_id must be >= 0")
        require(self.during_pass >= 1, "during_pass is 1-based")
        require(self.after_progress >= 0, "after_progress must be >= 0")


@dataclass(frozen=True)
class ThrottleSpec:
    """Every vertex executed at ``place_id`` sleeps ``sleep_s`` seconds."""

    place_id: int
    sleep_s: float = 0.0005

    def __post_init__(self) -> None:
        require(self.place_id >= 0, "place_id must be >= 0")
        require(0.0 <= self.sleep_s <= 0.1, "sleep_s must be in [0, 0.1]")


@dataclass(frozen=True)
class MessageChaos:
    """Message-layer perturbation probabilities and the survival budget.

    The probabilities are applied per message by :class:`~repro.chaos.
    network.ChaosPipe` (real pipes, mp engine) and, in modelled form, by
    :class:`~repro.chaos.network.ChaosNetwork` (in-process engines). The
    timeout/retry fields configure the mp pipe's retry-with-backoff and
    are honoured even when all probabilities are zero.
    """

    p_drop: float = 0.0
    p_dup: float = 0.0
    p_delay: float = 0.0
    p_reorder: float = 0.0
    #: real (mp) or modelled (inline/threaded) delay per delayed message
    delay_s: float = 0.002
    #: master-side wait for one reply before resending the request
    timeout_s: float = 0.25
    #: resend attempts before the place is declared dead
    max_retries: int = 10
    #: base backoff between resends (doubles per attempt)
    backoff_s: float = 0.005

    def __post_init__(self) -> None:
        for name in ("p_drop", "p_dup", "p_delay", "p_reorder"):
            p = getattr(self, name)
            require(0.0 <= p <= 1.0, f"{name} must be in [0, 1], got {p}")
        require(self.delay_s >= 0.0, "delay_s must be >= 0")
        require(self.timeout_s > 0.0, "timeout_s must be > 0")
        require(self.max_retries >= 1, "max_retries must be >= 1")
        require(self.backoff_s >= 0.0, "backoff_s must be >= 0")


@dataclass(frozen=True)
class ChaosSchedule:
    """One run's worth of composable fault events, from one seed."""

    seed: int = 0
    kills: Tuple[KillSpec, ...] = ()
    recovery_kills: Tuple[RecoveryKillSpec, ...] = ()
    throttles: Tuple[ThrottleSpec, ...] = ()
    message: Optional[MessageChaos] = None

    def __post_init__(self) -> None:
        # tolerate lists from JSON loaders / callers
        object.__setattr__(self, "kills", tuple(self.kills))
        object.__setattr__(self, "recovery_kills", tuple(self.recovery_kills))
        object.__setattr__(self, "throttles", tuple(self.throttles))

    # -- runtime views --------------------------------------------------------
    def fault_plans(self) -> List[FaultPlan]:
        """The kill events as injector-ready :class:`FaultPlan` objects."""
        return [
            FaultPlan(k.place_id, after_completions=k.after_completions)
            for k in self.kills
        ]

    @property
    def is_empty(self) -> bool:
        return not (
            self.kills or self.recovery_kills or self.throttles or self.message
        )

    # -- event-list view (for the shrinker) -----------------------------------
    def events(self) -> List[tuple]:
        """Flatten into atomic, individually removable events.

        Each event is ``(kind, spec)`` with kind in ``kill`` /
        ``recovery_kill`` / ``throttle`` / ``message``. ``from_events``
        inverts this.
        """
        out: List[tuple] = [("kill", k) for k in self.kills]
        out += [("recovery_kill", r) for r in self.recovery_kills]
        out += [("throttle", t) for t in self.throttles]
        if self.message is not None:
            out.append(("message", self.message))
        return out

    @classmethod
    def from_events(cls, events: Sequence[tuple], seed: int = 0) -> "ChaosSchedule":
        kills, rkills, throttles, message = [], [], [], None
        for kind, spec in events:
            if kind == "kill":
                kills.append(spec)
            elif kind == "recovery_kill":
                rkills.append(spec)
            elif kind == "throttle":
                throttles.append(spec)
            elif kind == "message":
                message = spec
            else:
                raise ValueError(f"unknown chaos event kind {kind!r}")
        return cls(
            seed=seed,
            kills=tuple(kills),
            recovery_kills=tuple(rkills),
            throttles=tuple(throttles),
            message=message,
        )

    # -- JSON round trip (replay files) ---------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "kills": [asdict(k) for k in self.kills],
            "recovery_kills": [asdict(r) for r in self.recovery_kills],
            "throttles": [asdict(t) for t in self.throttles],
            "message": asdict(self.message) if self.message else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSchedule":
        return cls(
            seed=int(data.get("seed", 0)),
            kills=tuple(KillSpec(**k) for k in data.get("kills", [])),
            recovery_kills=tuple(
                RecoveryKillSpec(**r) for r in data.get("recovery_kills", [])
            ),
            throttles=tuple(
                ThrottleSpec(**t) for t in data.get("throttles", [])
            ),
            message=(
                MessageChaos(**data["message"]) if data.get("message") else None
            ),
        )

    def describe(self) -> str:
        """One line per event, for harness output and failure reports."""
        lines = []
        for k in self.kills:
            lines.append(f"kill place {k.place_id} after {k.after_completions} completions")
        for r in self.recovery_kills:
            lines.append(
                f"kill place {r.place_id} during recovery pass {r.during_pass} "
                f"after {r.after_progress} cells"
            )
        for t in self.throttles:
            lines.append(f"throttle place {t.place_id} by {t.sleep_s * 1e3:.2f}ms/vertex")
        if self.message is not None:
            m = self.message
            lines.append(
                f"message chaos: drop {m.p_drop:.2f} dup {m.p_dup:.2f} "
                f"delay {m.p_delay:.2f} reorder {m.p_reorder:.2f}"
            )
        return "\n".join(lines) if lines else "(empty schedule)"

    # -- generation ------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        nplaces: int,
        total_work: int,
        *,
        intensity: float = 1.0,
        message_chaos: bool = False,
    ) -> "ChaosSchedule":
        """Compose a random schedule, fully determined by ``seed``.

        Draws cascading kills (distinct thresholds), near-simultaneous
        multi-place deaths (shared threshold), kills during a recovery
        pass, and slow-place throttles. Place 0 is never targeted — the
        generated space is the *survivable* fault space; the place-0 and
        total-loss cases are covered by dedicated regression tests.
        ``intensity`` scales event counts; ``message_chaos`` attaches a
        :class:`MessageChaos` block (mp runs).
        """
        require(nplaces >= 1, "nplaces must be >= 1")
        require(total_work >= 1, "total_work must be >= 1")
        require(intensity >= 0.0, "intensity must be >= 0")
        rng = seeded_rng(seed, "chaos-schedule")
        victims = list(range(1, nplaces))
        kills: List[KillSpec] = []
        rkills: List[RecoveryKillSpec] = []
        throttles: List[ThrottleSpec] = []

        if victims:
            max_kills = min(len(victims), 3)
            n_kills = int(rng.integers(0, max_kills + 1))
            n_kills = min(len(victims), max(0, round(n_kills * intensity)))
            chosen = list(rng.choice(victims, size=n_kills, replace=False))
            thresholds = [int(rng.integers(1, total_work + 1)) for _ in chosen]
            if len(thresholds) >= 2 and rng.random() < 0.35:
                # near-simultaneous multi-place death: share one threshold
                thresholds[1] = thresholds[0]
            kills = [
                KillSpec(int(p), t) for p, t in zip(chosen, thresholds)
            ]
            survivors_after = [v for v in victims if v not in {k.place_id for k in kills}]
            if kills and rng.random() < 0.4 * min(1.0, intensity):
                # a place dying while the recovery for an earlier kill is
                # still in flight — the hard case the paper never tests
                pool = survivors_after or victims
                rkills = [
                    RecoveryKillSpec(
                        int(rng.choice(pool)),
                        during_pass=1,
                        after_progress=int(rng.integers(0, max(1, total_work // 2))),
                    )
                ]
            if rng.random() < 0.4 * min(1.0, intensity):
                throttles = [
                    ThrottleSpec(
                        int(rng.choice(victims)),
                        sleep_s=float(rng.uniform(1e-4, 1.5e-3)),
                    )
                ]

        message = None
        if message_chaos:
            message = MessageChaos(
                p_drop=float(rng.uniform(0.0, 0.2)),
                p_dup=float(rng.uniform(0.0, 0.2)),
                p_delay=float(rng.uniform(0.0, 0.3)),
                p_reorder=float(rng.uniform(0.0, 0.3)),
                delay_s=0.001,
                timeout_s=0.1,
                max_retries=12,
                backoff_s=0.002,
            )
        return cls(
            seed=seed,
            kills=tuple(kills),
            recovery_kills=tuple(rkills),
            throttles=tuple(throttles),
            message=message,
        )

    def with_message(self, message: Optional[MessageChaos]) -> "ChaosSchedule":
        return replace(self, message=message)
