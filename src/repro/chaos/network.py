"""Chaos at the message layer.

Two wrappers, one per transport reality:

* :class:`ChaosNetwork` — subclasses :class:`~repro.apgas.network.
  NetworkModel` for the in-process engines, where the "network" is an
  accounting model: a dropped transfer is modelled as a retransmit
  (the message is recorded twice and the retry counted), a delayed one
  adds ``delay_s`` to the modelled cost. Values are never corrupted —
  places share one address space — so results stay exact while the
  traffic statistics and modelled time reflect the loss.
* :class:`ChaosPipe` — wraps one master-side ``multiprocessing``
  connection of the mp engine and injects *real* faults: requests and
  replies are dropped, duplicated, delayed (a true ``sleep``) and
  reordered. The mp engine survives because every message carries a
  sequence number, requests are idempotently deduplicated worker-side,
  and the master retries with backoff on a per-message timeout
  (see :mod:`repro.core.mp_engine`).

Both are driven by a seeded RNG so a given schedule replays exactly.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Optional

from repro.apgas.network import NetworkModel
from repro.chaos.schedule import MessageChaos
from repro.util.rng import seeded_rng

__all__ = ["ChaosNetwork", "ChaosPipe", "DROPPED"]

#: sentinel returned by :meth:`ChaosPipe.recv` for a reply that was
#: "lost on the wire" — the caller treats it exactly like silence and
#: falls through to its timeout/retry path
DROPPED = object()


class ChaosNetwork(NetworkModel):
    """A lossy, laggy postal model for the in-process engines."""

    def __init__(
        self,
        chaos: MessageChaos,
        seed: int = 0,
        *,
        alpha: Optional[float] = None,
        beta: Optional[float] = None,
        record_event: Optional[Callable[[str], None]] = None,
    ) -> None:
        kwargs = {}
        if alpha is not None:
            kwargs["alpha"] = alpha
        if beta is not None:
            kwargs["beta"] = beta
        super().__init__(**kwargs)
        self.chaos = chaos
        self._rng = seeded_rng(seed, "chaos-network")
        self._record_event = record_event or (lambda kind: None)

    def record(self, src: int, dst: int, nbytes: int) -> float:
        cost = super().record(src, dst, nbytes)
        if src == dst:
            return cost
        c = self.chaos
        if c.p_delay and self._rng.random() < c.p_delay:
            self._record_event("msg_delay")
            cost += c.delay_s
        if c.p_drop and self._rng.random() < c.p_drop:
            # the transfer was lost and retransmitted: pay for it twice
            self._record_event("msg_drop")
            self.record_retry()
            cost += super().record(src, dst, nbytes) + c.backoff_s
        if c.p_dup and self._rng.random() < c.p_dup:
            # a duplicate delivery consumes bandwidth but nothing waits on it
            self._record_event("msg_dup")
            super().record(src, dst, nbytes)
        return cost


class ChaosPipe:
    """A misbehaving wrapper over one master-side mp connection.

    Outgoing messages may be dropped (never sent), duplicated (sent
    twice) or delayed (a real sleep before the send). Incoming replies
    may be swapped with the next queued reply (reordering) or dropped —
    :meth:`recv` returns :data:`DROPPED`, which the mp engine's reply
    loop treats as silence, letting its timeout/retry machinery take
    over. ``poll``/``fileno``/``close`` delegate, so the wrapper is a
    drop-in for the raw connection. The underlying connection stays
    reachable as :attr:`raw` for chaos-free teardown.
    """

    def __init__(
        self,
        conn,
        chaos: MessageChaos,
        seed: int = 0,
        *,
        record_event: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.raw = conn
        self.chaos = chaos
        self._rng = seeded_rng(seed, "chaos-pipe")
        self._record_event = record_event or (lambda kind: None)
        self._stash: deque = deque()

    # -- outgoing ---------------------------------------------------------------
    def send(self, msg) -> None:
        c = self.chaos
        if c.p_delay and self._rng.random() < c.p_delay:
            self._record_event("msg_delay")
            time.sleep(c.delay_s)
        if c.p_drop and self._rng.random() < c.p_drop:
            self._record_event("msg_drop")
            return  # lost on the wire
        self.raw.send(msg)
        if c.p_dup and self._rng.random() < c.p_dup:
            self._record_event("msg_dup")
            self.raw.send(msg)

    # -- incoming ---------------------------------------------------------------
    def poll(self, timeout: float = 0.0) -> bool:
        if self._stash:
            return True
        return self.raw.poll(timeout)

    def recv(self):
        if self._stash:
            msg = self._stash.popleft()
        else:
            msg = self.raw.recv()
            c = self.chaos
            if c.p_reorder and self._rng.random() < c.p_reorder and self.raw.poll(0):
                # swap with the next already-queued reply
                self._record_event("msg_reorder")
                self._stash.append(msg)
                msg = self.raw.recv()
        c = self.chaos
        if c.p_drop and self._rng.random() < c.p_drop:
            self._record_event("msg_drop")
            return DROPPED
        return msg

    # -- passthrough -------------------------------------------------------------
    def fileno(self) -> int:  # pragma: no cover - select() compatibility
        return self.raw.fileno()

    def close(self) -> None:
        self.raw.close()
