"""The differential chaos harness.

One **case** is a (app, pattern, engine, tile shape, index domain)
configuration; one
**trial** runs that case under a seeded :class:`~repro.chaos.schedule.
ChaosSchedule` and diffs *every result cell* against an independent serial
reference — the pattern-generic :func:`~repro.chaos.probe.probe_oracle`
for the probe app, or ``repro.apps.serial`` matrices for the concrete
apps. A trial fails if any cell differs, if the run raises anything other
than a clean :class:`~repro.errors.UnrecoverableError`, or if it produces
no result at all.

:func:`sweep` walks the cross product app x pattern x engine x tile-shape
x seed, generating one schedule per (case, seed) — fully replayable:
re-running the same sweep arguments reproduces the same schedules, and a
failing trial's exact (spec, schedule) pair is what
:func:`~repro.chaos.shrink.shrink_case` minimizes and
:func:`~repro.chaos.shrink.write_replay` stores.

Cases that cannot exist are *skipped*, not failed: a square tile shape on
a pattern whose coarsening is cyclic raises
:class:`~repro.errors.PatternError` at build time, and the concrete apps
only run on their own pattern.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaos.probe import ChaosProbeApp, probe_oracle
from repro.chaos.schedule import ChaosSchedule
from repro.errors import PatternError, UnrecoverableError
from repro.patterns import get_pattern

__all__ = ["CaseSpec", "CaseResult", "build_case", "run_case", "sweep"]

Coord = Tuple[int, int]

#: mismatches reported per failing trial before truncation
_MAX_DIFFS = 8

#: apps the harness knows how to build and diff. "probe" / "buggy-probe"
#: run on every pattern; the concrete apps pin their own pattern and act
#: as end-to-end spot checks with the repro.apps.serial oracles. The
#: tree/tensor apps exercise the non-grid index domains (and the object
#: value store, for the tree pair) under the same seeded schedules.
APPS = (
    "probe",
    "buggy-probe",
    "lcs",
    "sw",
    "knapsack",
    "tree-knapsack",
    "tree-mis",
    "msa3",
)

#: the index domain each concrete app runs on (everything else is grid)
DOMAIN_OF = {"tree-knapsack": "tree", "tree-mis": "tree", "msa3": "tensor"}


@dataclass(frozen=True)
class CaseSpec:
    """One point of the configuration space, independent of the schedule."""

    app: str = "probe"
    pattern: str = "diagonal"
    engine: str = "inline"
    nplaces: int = 3
    height: int = 12
    width: int = 12
    tile_shape: Optional[Tuple[int, int]] = None
    #: probe salt / instance seed for the concrete apps
    salt: int = 0
    #: shared-memory transport: None = runtime default, True/False = forced
    shm: Optional[bool] = None
    #: index domain the app's DAG lives on: "grid", "tree" or "tensor"
    domain: str = "grid"

    def label(self) -> str:
        tile = (
            f" tile={self.tile_shape[0]}x{self.tile_shape[1]}"
            if self.tile_shape
            else ""
        )
        shm = "" if self.shm is None else f" shm={self.shm}"
        dom = "" if self.domain == "grid" else f" domain={self.domain}"
        return (
            f"{self.app}:{self.pattern} engine={self.engine} "
            f"places={self.nplaces} {self.height}x{self.width}{tile}{shm}{dom}"
        )

    def to_dict(self) -> dict:
        d = asdict(self)
        d["tile_shape"] = list(self.tile_shape) if self.tile_shape else None
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "CaseSpec":
        data = dict(data)
        if data.get("tile_shape"):
            data["tile_shape"] = tuple(data["tile_shape"])
        return cls(**data)


@dataclass
class CaseResult:
    """The verdict of one trial: case + schedule + cell-level diff."""

    spec: CaseSpec
    schedule: ChaosSchedule
    ok: bool
    skipped: bool = False
    #: why the case was skipped / what the run raised, if anything
    error: Optional[str] = None
    #: first few ``(coord, expected, actual)`` mismatches
    mismatches: List[Tuple[Coord, object, object]] = field(default_factory=list)
    mismatch_count: int = 0
    completions: int = 0
    recoveries: int = 0
    msg_retries: int = 0
    #: chaos events actually injected, by kind (from the controller)
    injected: Dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        """A reproduction-ready failure report (printed by tests and CLI)."""
        lines = [
            f"case    : {self.spec.label()}",
            f"seed    : {self.schedule.seed}",
            "schedule:",
        ]
        lines += ["  " + ln for ln in self.schedule.describe().splitlines()]
        if self.skipped:
            lines.append(f"skipped : {self.error}")
        elif self.error:
            lines.append(f"raised  : {self.error}")
        for coord, exp, got in self.mismatches:
            lines.append(f"diff    : cell {coord}: expected {exp}, got {got}")
        if self.mismatch_count > len(self.mismatches):
            lines.append(
                f"          ... {self.mismatch_count - len(self.mismatches)}"
                " more cells differ"
            )
        return "\n".join(lines)


def _build_dag(pattern: str, height: int, width: int):
    cls = get_pattern(pattern)
    if pattern == "banded":
        return cls(height, width, max(2, min(height, width) // 3))
    return cls(height, width)


def build_case(spec: CaseSpec):
    """Instantiate ``(app, dag, expected)`` for a spec.

    ``expected`` maps every active coord to its reference value, computed
    without any runtime machinery. Raises :class:`PatternError` for
    impossible combinations (the sweep converts that into a skip).
    """
    if spec.app in ("probe", "buggy-probe"):
        dag = _build_dag(spec.pattern, spec.height, spec.width)
        app = ChaosProbeApp(
            salt=spec.salt, buggy_recompute=spec.app == "buggy-probe"
        )
        return app, dag, probe_oracle(dag, spec.salt)
    if spec.app == "lcs":
        from repro.apps.lcs import LCSApp
        from repro.apps.serial import lcs_matrix
        from repro.patterns.diagonal import DiagonalDag

        x, y = _strings(spec.height - 1, spec.width - 1, spec.salt)
        dag = DiagonalDag(len(x) + 1, len(y) + 1)
        ref = lcs_matrix(x, y)
        return LCSApp(x, y), dag, _matrix_cells(dag, ref)
    if spec.app == "sw":
        from repro.apps.serial import sw_matrix
        from repro.apps.smith_waterman import SWApp
        from repro.patterns.diagonal import DiagonalDag

        x, y = _strings(spec.height - 1, spec.width - 1, spec.salt)
        dag = DiagonalDag(len(x) + 1, len(y) + 1)
        ref = sw_matrix(x, y)
        return SWApp(x, y), dag, _matrix_cells(dag, ref)
    if spec.app == "knapsack":
        from repro.apps.knapsack import KnapsackApp, make_knapsack_instance
        from repro.apps.serial import knapsack_matrix
        from repro.patterns.knapsack import KnapsackDag

        capacity = max(4, spec.width - 1)
        weights, values = make_knapsack_instance(
            max(2, spec.height - 1), capacity, seed=spec.salt
        )
        dag = KnapsackDag(weights, capacity)
        ref = knapsack_matrix(weights, values, capacity)
        return KnapsackApp(weights, values, capacity), dag, _matrix_cells(dag, ref)
    if spec.app in ("tree-knapsack", "tree-mis"):
        from repro.apps.serial import tree_knapsack_tables, tree_mis_tables
        from repro.apps.tree_knapsack import TreeKnapsackApp, make_tree_instance
        from repro.apps.tree_mis import TreeMISApp
        from repro.core.domain import TreeDomain
        from repro.patterns.tree import TreeDag

        n = max(2, spec.height)
        parents, weights, values = make_tree_instance(n, seed=spec.salt)
        dom = TreeDomain(parents)
        dag = TreeDag(dom)
        if spec.app == "tree-knapsack":
            capacity = max(4, spec.width - 1)
            tables = tree_knapsack_tables(parents, weights, values, capacity)
            app = TreeKnapsackApp(dom, weights, values, capacity)
        else:
            tables = tree_mis_tables(parents, weights)
            app = TreeMISApp(dom, weights)
        return app, dag, {dom.to_cell(v): tables[v] for v in range(n)}
    if spec.app == "msa3":
        from repro.apps.msa import MSA3App, make_msa3_instance
        from repro.apps.serial import msa3_matrix
        from repro.patterns.tensor import TensorWavefrontDag

        length = max(2, min(spec.height, spec.width) // 3)
        x, y, z = make_msa3_instance(length, seed=spec.salt)
        app = MSA3App(x, y, z)
        dag = TensorWavefrontDag(app.domain.shape)
        ref = msa3_matrix(x, y, z)
        expected = {
            app.domain.to_cell(idx): int(ref[idx])
            for idx in app.domain.indices()
        }
        return app, dag, expected
    raise ValueError(f"unknown harness app {spec.app!r}; known: {APPS}")


def _strings(n: int, m: int, salt: int) -> Tuple[str, str]:
    """Deterministic DNA-ish inputs sized to the case's matrix."""
    from repro.util.rng import seeded_rng

    rng = seeded_rng(salt, "chaos-harness-strings")
    alphabet = "ACGT"
    x = "".join(alphabet[int(k)] for k in rng.integers(0, 4, size=max(1, n)))
    y = "".join(alphabet[int(k)] for k in rng.integers(0, 4, size=max(1, m)))
    return x, y


def _matrix_cells(dag, matrix) -> Dict[Coord, object]:
    return {
        (i, j): matrix[i][j]
        for i, j in dag.region
        if dag.is_active(i, j)
    }


def _show(value: object) -> object:
    """A plain, comparable rendering of a cell value for diff reports."""
    import numpy as np

    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, tuple):
        return tuple(_show(v) for v in value)
    return int(value)  # type: ignore[call-overload]


def _values_differ(exp: object, got: object) -> bool:
    """Cell-value inequality across the value types the apps use.

    Grid/tensor apps store scalars; the tree apps store numpy arrays
    (knapsack budget tables) and tuples (MIS ``(take, skip)`` pairs).
    """
    import numpy as np

    if isinstance(exp, np.ndarray) or isinstance(got, np.ndarray):
        return not np.array_equal(exp, got)
    if isinstance(exp, tuple) or isinstance(got, tuple):
        return _show(exp) != _show(got)
    return int(got) != int(exp)  # type: ignore[call-overload]


def run_case(spec: CaseSpec, schedule: ChaosSchedule) -> CaseResult:
    """Run one trial and diff every cell against the serial reference."""
    from repro.core.config import DPX10Config
    from repro.core.runtime import DPX10Runtime

    try:
        app, dag, expected = build_case(spec)
        # tree DAGs partition by subtree, exactly as the apps' solvers do
        # by default, so recovery re-partitions over the survivors too
        dom = dag.domain
        custom_dist = dom.make_dist if dom.kind == "tree" else None
        config = DPX10Config(
            nplaces=spec.nplaces,
            engine=spec.engine,
            tile_shape=spec.tile_shape,
            chaos=None if schedule.is_empty else schedule,
            shm=spec.shm,
            custom_dist=custom_dist,
        )
        runtime = DPX10Runtime(app, dag, config)
        # tiling verifies the coarsened pattern lazily; probe it up front
        # so impossible (pattern, tile) pairs skip instead of fail
        if config.tiling_enabled:
            dag.coarsen(*config.tile_shape)
    except PatternError as exc:
        return CaseResult(
            spec, schedule, ok=True, skipped=True, error=str(exc)
        )

    result = CaseResult(spec, schedule, ok=True)
    try:
        report = runtime.run()
    except UnrecoverableError as exc:
        # a schedule that kills place 0 / every place *must* end here —
        # cleanly — rather than hang or return wrong cells
        result.error = f"{type(exc).__name__}: {exc}"
        result.ok = True
        return result
    except Exception as exc:  # noqa: BLE001 - the verdict, not a crash
        result.error = f"{type(exc).__name__}: {exc}"
        result.ok = False
        return result

    result.completions = report.completions
    result.recoveries = report.recoveries
    result.msg_retries = report.msg_retries
    if runtime.chaos is not None:
        result.injected = dict(runtime.chaos.counts)
    for coord, exp in sorted(expected.items()):
        got = dag.get_vertex(*coord).get_result()
        if _values_differ(exp, got):
            result.mismatch_count += 1
            if len(result.mismatches) < _MAX_DIFFS:
                result.mismatches.append((coord, _show(exp), _show(got)))
    if result.mismatch_count:
        result.ok = False
    return result


def sweep(
    apps: Sequence[str] = ("probe",),
    patterns: Sequence[str] = ("diagonal",),
    engines: Sequence[str] = ("inline",),
    seeds: Sequence[int] = (0,),
    *,
    nplaces: int = 3,
    height: int = 12,
    width: int = 12,
    tile_shapes: Sequence[Optional[Tuple[int, int]]] = (None,),
    intensity: float = 1.0,
    message_chaos: Optional[bool] = None,
    shm: Optional[bool] = None,
    on_result: Optional[Callable[[CaseResult], None]] = None,
    stop_on_failure: bool = False,
) -> List[CaseResult]:
    """Run the full cross product of cases under seeded schedules.

    One schedule is generated per (case, seed) by
    :meth:`ChaosSchedule.generate` against the case's actual work size,
    so the same arguments always reproduce the same trials.
    ``message_chaos`` defaults to "mp engine only" (the in-process
    engines model it on the network instead of the pipes, which the mp
    engine exercises for real).
    """
    results: List[CaseResult] = []
    for app in apps:
        for pattern in patterns:
            if app not in ("probe", "buggy-probe") and pattern != "diagonal":
                continue  # concrete apps pin their own pattern
            for tile_shape in tile_shapes:
                spec0 = CaseSpec(
                    app=app,
                    pattern=pattern,
                    nplaces=nplaces,
                    height=height,
                    width=width,
                    tile_shape=tile_shape,
                    shm=shm,
                    domain=DOMAIN_OF.get(app, "grid"),
                )
                try:
                    _, dag, expected = build_case(spec0)
                    total_work = len(expected)
                except PatternError as exc:
                    skip = CaseResult(
                        spec0,
                        ChaosSchedule(seed=0),
                        ok=True,
                        skipped=True,
                        error=str(exc),
                    )
                    results.append(skip)
                    if on_result:
                        on_result(skip)
                    continue
                for engine in engines:
                    spec = CaseSpec(
                        app=app,
                        pattern=pattern,
                        engine=engine,
                        nplaces=nplaces,
                        height=height,
                        width=width,
                        tile_shape=tile_shape,
                        shm=shm,
                        domain=DOMAIN_OF.get(app, "grid"),
                    )
                    for seed in seeds:
                        schedule = ChaosSchedule.generate(
                            seed,
                            nplaces,
                            total_work,
                            intensity=intensity,
                            message_chaos=(
                                engine == "mp"
                                if message_chaos is None
                                else message_chaos
                            ),
                        )
                        result = run_case(spec, schedule)
                        results.append(result)
                        if on_result:
                            on_result(result)
                        if stop_on_failure and not result.ok:
                            return results
    return results
