"""Server-level chaos soak: kill places mid-request, jobs must still land.

The chaos battery (PR 4) proves engine-level recovery: a run with seeded
faults produces the same matrix as a fault-free run. This module lifts
that proof one layer up, to the serving stack: a :class:`JobServer` with
``allow_faults=True`` receives a stream of jobs whose requests carry
:class:`~repro.chaos.faults.FaultPlan`s that SIGKILL place processes
mid-execution. The pass condition per trial is strict:

* the job reaches ``done`` (a mid-request place death must be absorbed
  by a warm restart from the pool, never surfaced as a failed job), and
* the returned score is **bit-identical** to the serial oracle for the
  same inputs — recovery recomputed exactly the lost cells, no more, no
  less.

Faulted requests run with ``use_cache=False``: the result cache keys on
inputs only (faults are execution detail, not semantics), so a cached
fault-free result would otherwise satisfy the request without ever
exercising recovery.

Drive it from the CLI (``python -m repro chaos soak``), from tests
(``tests/serve/test_soak.py``), or from CI (over HTTP via
``--http`` to cover the transport too).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.serve.api import APPS

__all__ = ["SoakSpec", "SoakTrial", "SoakReport", "run_soak"]

#: apps covering three distinct dependency patterns (diagonal wavefront,
#: full grid, interval) — enough shape diversity to catch
#: pattern-specific recovery bugs without a full catalog sweep
DEFAULT_SOAK_APPS = ("sw", "mtp", "lcs")


@dataclass(frozen=True)
class SoakSpec:
    """Shape of one soak run."""

    requests: int = 12
    apps: Sequence[str] = DEFAULT_SOAK_APPS
    #: synthetic instance side length (DP matrix is roughly size x size)
    size: int = 64
    nplaces: int = 3
    tenants: Sequence[str] = ("alice", "bob")
    seed_base: int = 0
    #: every k-th request carries no fault (k = 1/(1-fraction)); 1.0
    #: faults every request
    fault_fraction: float = 1.0
    #: where in the run the kill lands (fraction of completions)
    kill_at: float = 0.4
    pool_capacity: Optional[int] = None

    def plan(self) -> List[Tuple[str, str, int, bool, int]]:
        """The request stream: (app, tenant, seed, faulted, victim)."""
        out = []
        for i in range(self.requests):
            app = list(self.apps)[i % len(list(self.apps))]
            tenant = list(self.tenants)[i % len(list(self.tenants))]
            faulted = (
                self.fault_fraction >= 1.0
                or (i * self.fault_fraction) % 1.0 + self.fault_fraction >= 1.0
            )
            # rotate the victim over every place, including place 0 —
            # with a warm pool even the master's place 0 peer is
            # replaceable mid-run
            victim = i % self.nplaces
            out.append((app, tenant, self.seed_base + i, faulted, victim))
        return out


@dataclass
class SoakTrial:
    """One request's outcome against its oracle."""

    app: str
    tenant: str
    seed: int
    faulted: bool
    victim: int
    status: str = "unsubmitted"
    score: Optional[int] = None
    expected: Optional[int] = None
    recoveries: int = 0
    wall_time: float = 0.0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "done" and self.score == self.expected

    def describe(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        fault = f"kill p{self.victim}" if self.faulted else "no fault"
        detail = (
            f"score {self.score} == oracle {self.expected}"
            if self.ok
            else f"status={self.status} score={self.score} "
            f"oracle={self.expected} {self.error}"
        )
        return (
            f"[{verdict}] {self.app} seed={self.seed} tenant={self.tenant} "
            f"({fault}, {self.recoveries} recoveries, "
            f"{self.wall_time:.3f}s): {detail}"
        )


@dataclass
class SoakReport:
    """Every trial plus the pool's restart accounting."""

    trials: List[SoakTrial] = field(default_factory=list)
    restarts_served: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return bool(self.trials) and all(t.ok for t in self.trials)

    @property
    def failures(self) -> List[SoakTrial]:
        return [t for t in self.trials if not t.ok]

    def describe(self) -> str:
        lines = [t.describe() for t in self.trials]
        n_fault = sum(1 for t in self.trials if t.faulted)
        lines.append(
            f"soak: {len(self.trials)} requests ({n_fault} faulted) — "
            f"{len(self.trials) - len(self.failures)} ok, "
            f"{len(self.failures)} failed; "
            f"{self.restarts_served} pool restarts served; "
            f"{self.elapsed:.2f}s"
        )
        return "\n".join(lines)


def _request_body(
    spec: SoakSpec, app: str, tenant: str, seed: int, faulted: bool, victim: int
) -> Dict[str, Any]:
    body: Dict[str, Any] = {
        "tenant": tenant,
        "app": app,
        "params": {"size": spec.size, "seed": seed},
        "engine": "mp",
        "nplaces": spec.nplaces,
        # a cached fault-free result would short-circuit recovery
        "use_cache": False,
    }
    if faulted:
        body["faults"] = [{"place": victim, "at_fraction": spec.kill_at}]
    return body


def _submit_http(base_url: str, body: Dict[str, Any]) -> Dict[str, Any]:
    import json
    import urllib.request

    req = urllib.request.Request(
        base_url + "/jobs",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read())


def run_soak(
    spec: SoakSpec,
    server: Optional[Any] = None,
    *,
    over_http: bool = False,
    verbose: bool = False,
) -> SoakReport:
    """Run the soak; returns a report whose ``ok`` is the pass verdict.

    ``server`` may be a pre-built :class:`~repro.serve.server.JobServer`
    (it must have ``allow_faults=True``); otherwise one is created and
    closed around the run. ``over_http`` routes submissions through a
    background HTTP listener instead of calling ``submit`` in-process.
    """
    from repro.serve.server import JobServer, serve_background

    own_server = server is None
    if own_server:
        server = JobServer(
            port=0,
            pool_capacity=spec.pool_capacity,
            allow_faults=True,
            max_queued=max(32, spec.requests),
        )
    if not server.allow_faults:
        raise ValueError("soak needs a server with allow_faults=True")

    report = SoakReport()
    start = time.monotonic()

    def _drive(submit) -> None:
        pending: List[Tuple[SoakTrial, str]] = []
        for app, tenant, seed, faulted, victim in spec.plan():
            trial = SoakTrial(
                app=app, tenant=tenant, seed=seed, faulted=faulted, victim=victim
            )
            report.trials.append(trial)
            trial.expected = APPS[app].oracle(
                APPS[app].normalize({"size": spec.size, "seed": seed})
            )
            body = _request_body(spec, app, tenant, seed, faulted, victim)
            payload = submit(body)
            # admission can 429 a burst; the soak retries politely
            # rather than counting backpressure as a chaos failure
            retries = 0
            while "id" not in payload and retries < 50:
                time.sleep(float(payload.get("retry_after", 0.2)) or 0.2)
                payload = submit(body)
                retries += 1
            if "id" not in payload:
                trial.status = "rejected"
                trial.error = str(payload.get("error", ""))
                continue
            pending.append((trial, payload["id"]))
        for trial, job_id in pending:
            status = server.wait(job_id, timeout=120.0)
            trial.status = status["status"]
            trial.error = status.get("error", "")
            result = status.get("result") or {}
            if "score" in result:
                trial.score = result["score"]
                trial.recoveries = result.get("recoveries", 0)
                trial.wall_time = result.get("wall_time", 0.0)
            if verbose:
                print(trial.describe())

    try:
        if over_http:
            with serve_background(server) as base_url:
                _drive(lambda body: _submit_http(base_url, body))
        else:
            _drive(lambda body: server.submit(body)[1])
        report.restarts_served = server.pool.stats().restarts_served
    finally:
        if own_server:
            server.close()
    report.elapsed = time.monotonic() - start
    return report
