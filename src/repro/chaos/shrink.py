"""Shrink a failing chaos trial to a minimal reproducing fault sequence.

Given a (spec, schedule) pair whose trial fails, :func:`shrink_case`
searches for the smallest sub-schedule that still fails: the schedule is
flattened into atomic events (each kill, each recovery kill, each
throttle, the message block), a ddmin pass removes event *chunks* of
shrinking size, and a final greedy pass guarantees 1-minimality — no
single remaining event can be dropped. Every candidate is re-run through
the real harness, so the result is a genuinely reproducing schedule, not
a syntactic guess.

The minimal trial is written to a **replay file**: a small JSON document
holding the case spec, the shrunk schedule, and the failure summary.
``python -m repro chaos replay <file>`` re-runs it; ``tests/chaos``
asserts a planted bug shrinks to <= 3 events.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional, Tuple

from repro.chaos.harness import CaseResult, CaseSpec, run_case
from repro.chaos.schedule import ChaosSchedule

__all__ = ["shrink_case", "shrink_schedule", "write_replay", "load_replay"]

#: schema tag in replay files, bumped on incompatible layout changes
_REPLAY_VERSION = 1


def shrink_schedule(
    schedule: ChaosSchedule,
    fails: Callable[[ChaosSchedule], bool],
    *,
    max_trials: int = 200,
) -> Tuple[ChaosSchedule, int]:
    """ddmin + greedy minimization of ``schedule`` under ``fails``.

    Returns ``(minimal, trials_used)``. ``fails`` must be deterministic
    for the guarantee to mean anything — seeded schedules on the inline
    engine are. The input schedule is assumed failing (asserted).
    """
    events = schedule.events()
    seed = schedule.seed

    trials = 0

    def check(evs: List[tuple]) -> bool:
        nonlocal trials
        trials += 1
        return fails(ChaosSchedule.from_events(evs, seed=seed))

    assert check(events), "shrink_schedule needs a failing schedule"

    # ddmin: remove complements of chunks, halving granularity
    n = 2
    while len(events) >= 2 and trials < max_trials:
        chunk = max(1, len(events) // n)
        reduced = False
        start = 0
        while start < len(events) and trials < max_trials:
            candidate = events[:start] + events[start + chunk:]
            if candidate and check(candidate):
                events = candidate
                n = max(2, n - 1)
                reduced = True
                start = 0
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break
            n = min(len(events), n * 2)

    # greedy pass: certify 1-minimality (each event is load-bearing)
    changed = True
    while changed and trials < max_trials:
        changed = False
        for k in range(len(events)):
            if len(events) == 1:
                break
            candidate = events[:k] + events[k + 1:]
            if check(candidate):
                events = candidate
                changed = True
                break

    return ChaosSchedule.from_events(events, seed=seed), trials


def shrink_case(
    spec: CaseSpec,
    schedule: ChaosSchedule,
    *,
    max_trials: int = 200,
) -> Tuple[ChaosSchedule, int]:
    """Minimize a failing trial's schedule by re-running the harness."""

    def fails(candidate: ChaosSchedule) -> bool:
        return not run_case(spec, candidate).ok

    return shrink_schedule(schedule, fails, max_trials=max_trials)


def write_replay(
    path: str,
    spec: CaseSpec,
    schedule: ChaosSchedule,
    result: Optional[CaseResult] = None,
) -> None:
    """Store one (shrunk) failing trial as a JSON replay file."""
    doc = {
        "version": _REPLAY_VERSION,
        "spec": spec.to_dict(),
        "schedule": schedule.to_dict(),
    }
    if result is not None:
        doc["failure"] = {
            "error": result.error,
            "mismatch_count": result.mismatch_count,
            "mismatches": [
                [list(coord), exp, got]
                for coord, exp, got in result.mismatches
            ],
            "completions": result.completions,
            "recoveries": result.recoveries,
        }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_replay(path: str) -> Tuple[CaseSpec, ChaosSchedule]:
    """Read a replay file back into a runnable (spec, schedule) pair."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    version = doc.get("version")
    if version != _REPLAY_VERSION:
        raise ValueError(
            f"unsupported replay file version {version!r} in {path}"
        )
    return (
        CaseSpec.from_dict(doc["spec"]),
        ChaosSchedule.from_dict(doc["schedule"]),
    )
