"""``python -m repro chaos`` — the chaos battery from the command line.

.. code-block:: bash

    # sweep: 50 seeded schedules x 3 engines over the probe app
    python -m repro chaos run --seeds 50 --engines inline,threaded,mp

    # every built-in pattern, plus tiled variants, against the oracle
    python -m repro chaos run --patterns all --tiled

    # reproduce a stored failure exactly
    python -m repro chaos replay replays/chaos-000.json

    # minimize a stored failure to its load-bearing events
    python -m repro chaos shrink --replay replays/chaos-000.json

    # end-to-end proof the shrinker works: plant a recompute bug,
    # find a failing schedule, shrink it to <= 3 events
    python -m repro chaos shrink --demo

Failing trials are written as replay files (JSON: case spec + schedule +
failure summary) into ``--replay-dir`` so CI can upload them as
artifacts; exit status is the number of failing trials (capped at 99).
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional

from repro.chaos.harness import (
    APPS,
    CaseResult,
    CaseSpec,
    build_case,
    run_case,
    sweep,
)
from repro.chaos.schedule import ChaosSchedule
from repro.chaos.shrink import load_replay, shrink_case, write_replay

__all__ = ["add_chaos_parser"]

#: the pattern set "--patterns all" expands to (every registered pattern)
def _all_patterns() -> List[str]:
    from repro.patterns import PATTERNS

    return sorted(PATTERNS)


def _csv(text: str) -> List[str]:
    return [t.strip() for t in text.split(",") if t.strip()]


def _cmd_run(args) -> int:
    patterns = (
        _all_patterns() if args.patterns == "all" else _csv(args.patterns)
    )
    engines = _csv(args.engines)
    seeds = list(range(args.seed_base, args.seed_base + args.seeds))
    tile_shapes: List[Optional[tuple]] = [None]
    if args.tiled:
        tile_shapes += [(2, 2), (3, 2)]
    os.makedirs(args.replay_dir, exist_ok=True)

    failures: List[CaseResult] = []
    counts = {"ok": 0, "skipped": 0, "failed": 0}

    def on_result(result: CaseResult) -> None:
        if result.skipped:
            counts["skipped"] += 1
            return
        if result.ok:
            counts["ok"] += 1
            return
        counts["failed"] += 1
        failures.append(result)
        print(f"FAIL #{len(failures)}")
        print(result.describe())
        path = os.path.join(
            args.replay_dir, f"chaos-{len(failures) - 1:03d}.json"
        )
        schedule = result.schedule
        if args.shrink:
            schedule, trials = shrink_case(result.spec, result.schedule)
            print(
                f"shrunk to {len(schedule.events())} event(s) "
                f"in {trials} trials:"
            )
            print("  " + "\n  ".join(schedule.describe().splitlines()))
        write_replay(path, result.spec, schedule, result)
        print(f"replay written: {path}\n")

    sweep(
        apps=_csv(args.apps),
        patterns=patterns,
        engines=engines,
        seeds=seeds,
        nplaces=args.places,
        height=args.size,
        width=args.size,
        tile_shapes=tile_shapes,
        intensity=args.intensity,
        shm={"on": True, "off": False, "auto": None}[args.shm],
        on_result=on_result,
        stop_on_failure=args.stop_on_failure,
    )
    total = sum(counts.values())
    print(
        f"chaos sweep: {total} trials — {counts['ok']} ok, "
        f"{counts['skipped']} skipped, {counts['failed']} failed"
    )
    return min(99, counts["failed"])


def _cmd_replay(args) -> int:
    spec, schedule = load_replay(args.replay)
    print(f"replaying: {spec.label()}")
    print(schedule.describe())
    result = run_case(spec, schedule)
    if result.ok:
        print("result: PASS (the stored failure did not reproduce)")
        return 0
    print("result: FAIL (reproduced)")
    print(result.describe())
    return 1


def _cmd_shrink(args) -> int:
    if args.demo:
        return _shrink_demo(args)
    if not args.replay:
        print("chaos shrink needs --replay FILE (or --demo)")
        return 2
    spec, schedule = load_replay(args.replay)
    result = run_case(spec, schedule)
    if result.ok:
        print("stored trial passes; nothing to shrink")
        return 0
    minimal, trials = shrink_case(spec, schedule)
    print(
        f"shrunk {len(schedule.events())} -> {len(minimal.events())} "
        f"event(s) in {trials} trials:"
    )
    print(minimal.describe())
    out = args.out or args.replay
    write_replay(out, spec, minimal, run_case(spec, minimal))
    print(f"minimal replay written: {out}")
    return 0


def _shrink_demo(args) -> int:
    """The acceptance run: plant a bug, find a failure, shrink it.

    The buggy-probe app corrupts any cell recomputed after a fault, so
    every schedule with at least one effective kill fails; the shrinker
    must reduce a busy generated schedule to a minimal one (<= 3 events)
    that still reproduces deterministically.
    """
    spec = CaseSpec(
        app="buggy-probe",
        pattern="diagonal",
        engine="inline",
        nplaces=args.places,
        height=args.size,
        width=args.size,
    )
    _, _, expected = build_case(spec)
    total_work = len(expected)
    failing = None
    for seed in range(args.seed_base, args.seed_base + max(args.seeds, 20)):
        schedule = ChaosSchedule.generate(seed, args.places, total_work)
        if schedule.kills and not run_case(spec, schedule).ok:
            failing = schedule
            break
    if failing is None:
        print("demo could not find a failing seed (unexpected)")
        return 1
    print(f"planted-bug failure at seed {failing.seed}:")
    print(failing.describe())
    minimal, trials = shrink_case(spec, failing)
    n = len(minimal.events())
    print(f"\nshrunk {len(failing.events())} -> {n} event(s) in {trials} trials:")
    print(minimal.describe())
    first = run_case(spec, minimal)
    second = run_case(spec, minimal)
    deterministic = (not first.ok) and first.mismatches == second.mismatches
    print(f"\nminimal schedule reproduces deterministically: {deterministic}")
    if args.out:
        write_replay(args.out, spec, minimal, first)
        print(f"replay written: {args.out}")
    return 0 if (n <= 3 and deterministic) else 1


def _cmd_soak(args) -> int:
    from repro.chaos.soak import SoakSpec, run_soak

    spec = SoakSpec(
        requests=args.requests,
        apps=tuple(_csv(args.apps)),
        size=args.size,
        nplaces=args.places,
        seed_base=args.seed_base,
        fault_fraction=args.fault_fraction,
        pool_capacity=args.pool_capacity,
    )
    report = run_soak(spec, over_http=args.http, verbose=True)
    print(report.describe())
    return 0 if report.ok else min(99, len(report.failures) or 1)


def add_chaos_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``chaos`` command group on the repro CLI."""
    p = sub.add_parser(
        "chaos",
        help="chaos battery: seeded fault sweeps, replay, shrinking",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    chaos_sub = p.add_subparsers(dest="chaos_command", required=True)

    run = chaos_sub.add_parser(
        "run", help="sweep app x pattern x engine under seeded schedules"
    )
    run.add_argument(
        "--apps", default="probe", help=f"comma list from {', '.join(APPS)}"
    )
    run.add_argument(
        "--patterns",
        default="diagonal,grid,row_chain",
        help='comma list of pattern names, or "all"',
    )
    run.add_argument(
        "--engines", default="inline", help="comma list: inline,threaded,mp"
    )
    run.add_argument("--seeds", type=int, default=10, help="schedules per case")
    run.add_argument("--seed-base", type=int, default=0)
    run.add_argument("--places", type=int, default=3)
    run.add_argument("--size", type=int, default=12, help="matrix side length")
    run.add_argument(
        "--tiled", action="store_true", help="also sweep 2x2 and 3x2 tiles"
    )
    run.add_argument("--intensity", type=float, default=1.0)
    run.add_argument(
        "--shm",
        choices=("on", "off", "auto"),
        default="auto",
        help="force the shared-memory transport on/off (auto = runtime default)",
    )
    run.add_argument("--replay-dir", default="chaos-replays")
    run.add_argument(
        "--shrink",
        action="store_true",
        help="minimize each failure before writing its replay",
    )
    run.add_argument("--stop-on-failure", action="store_true")
    run.set_defaults(fn=_cmd_run)

    soak = chaos_sub.add_parser(
        "soak",
        help="server-level soak: place kills mid-request, jobs must land",
    )
    soak.add_argument("--requests", type=int, default=12)
    soak.add_argument(
        "--apps",
        default=",".join(("sw", "mtp", "lcs")),
        help="comma list from the serving catalog",
    )
    soak.add_argument("--size", type=int, default=64)
    soak.add_argument("--places", type=int, default=3)
    soak.add_argument("--seed-base", type=int, default=0)
    soak.add_argument(
        "--fault-fraction",
        type=float,
        default=1.0,
        help="fraction of requests carrying a mid-run place kill",
    )
    soak.add_argument("--pool-capacity", type=int, default=None)
    soak.add_argument(
        "--http",
        action="store_true",
        help="submit over a live HTTP listener instead of in-process",
    )
    soak.set_defaults(fn=_cmd_soak)

    replay = chaos_sub.add_parser("replay", help="re-run a stored replay file")
    replay.add_argument("replay")
    replay.set_defaults(fn=_cmd_replay)

    shrink = chaos_sub.add_parser(
        "shrink", help="minimize a failing replay (or --demo the shrinker)"
    )
    shrink.add_argument("--replay", default=None)
    shrink.add_argument("--out", default=None)
    shrink.add_argument(
        "--demo",
        action="store_true",
        help="plant a recompute bug and prove the shrinker minimizes it",
    )
    shrink.add_argument("--places", type=int, default=3)
    shrink.add_argument("--size", type=int, default=12)
    shrink.add_argument("--seeds", type=int, default=20)
    shrink.add_argument("--seed-base", type=int, default=0)
    shrink.set_defaults(fn=_cmd_shrink)
