"""The per-run chaos controller.

One :class:`ChaosController` is built per run from the
:class:`~repro.chaos.schedule.ChaosSchedule` in ``DPX10Config(chaos=...)``.
The runtime and both recovery paths consult it at fixed points:

* ``fault_plans()`` — the schedule's kill events, merged into the run's
  :class:`~repro.apgas.failure.FaultInjector`;
* ``on_execute(place_id)`` — the per-vertex throttle hook (worker path);
* ``begin_recovery_pass()`` / ``poll_recovery(progress)`` — recovery-kill
  triggers: the in-process :func:`~repro.core.recovery.recover` polls per
  salvaged cell, the mp master polls per recomputed recovery batch;
* ``record(kind)`` — every injected event is counted into
  ``dpx10_chaos_injected_total{kind}`` on the run's metrics registry.

The controller is thread-safe (threaded-engine workers throttle and the
injector fires concurrently) and each recovery-kill spec fires at most
once.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.chaos.schedule import ChaosSchedule, MessageChaos
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

__all__ = ["ChaosController"]


class ChaosController:
    """Run-scoped chaos state machine over one :class:`ChaosSchedule`."""

    def __init__(
        self,
        schedule: ChaosSchedule,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        self.schedule = schedule
        self._lock = threading.Lock()
        self._pending_recovery_kills = list(schedule.recovery_kills)
        self._throttles = {t.place_id: t.sleep_s for t in schedule.throttles}
        self._throttles_seen: set = set()
        self._pass_no = 0
        #: injected events by kind, scraped into the metrics registry and
        #: readable post-run regardless of whether metrics are enabled
        self.counts: Dict[str, int] = {}
        self._counter = metrics.counter(
            "dpx10_chaos_injected_total",
            "chaos events injected into the run, by kind",
            ("kind",),
        )

    # -- accounting -----------------------------------------------------------
    def record(self, kind: str, amount: int = 1) -> None:
        with self._lock:
            self.counts[kind] = self.counts.get(kind, 0) + amount
        self._counter.labels(kind).inc(amount)

    # -- kill plans ------------------------------------------------------------
    def fault_plans(self):
        return self.schedule.fault_plans()

    @property
    def message(self) -> Optional[MessageChaos]:
        return self.schedule.message

    # -- throttles (worker hot path) --------------------------------------------
    @property
    def has_throttles(self) -> bool:
        return bool(self._throttles)

    def on_execute(self, place_id: int) -> None:
        """Apply the slow-place throttle for one vertex, if configured."""
        sleep_s = self._throttles.get(place_id)
        if sleep_s is None:
            return
        if place_id not in self._throttles_seen:
            with self._lock:
                first = place_id not in self._throttles_seen
                self._throttles_seen.add(place_id)
            if first:
                self.record("throttle")
        if sleep_s > 0:
            time.sleep(sleep_s)

    def throttle_batch(self, place_id: int, ncells: int) -> float:
        """The batch form of :meth:`on_execute`: one sleep per tile or
        level batch (the worker process cannot be throttled per vertex
        from the outside), capped so a large matrix cannot stall the
        driver. Returns the seconds slept so callers (the mp master's
        straggler accounting) can attribute the injected latency to the
        throttled place's service time."""
        sleep_s = self._throttles.get(place_id)
        if sleep_s is None or ncells <= 0:
            return 0.0
        if place_id not in self._throttles_seen:
            with self._lock:
                first = place_id not in self._throttles_seen
                self._throttles_seen.add(place_id)
            if first:
                self.record("throttle")
        if sleep_s <= 0:
            return 0.0
        slept = min(0.05, sleep_s * ncells)
        time.sleep(slept)
        return slept

    # -- recovery-kill triggers ---------------------------------------------------
    def begin_recovery_pass(self) -> int:
        """Note that a new recovery pass started; returns its 1-based number.

        Called once per runtime-level recovery entry (internal restarts of
        the same pass after a mid-recovery death do not advance it).
        """
        with self._lock:
            self._pass_no += 1
            return self._pass_no

    @property
    def recovery_pass(self) -> int:
        return self._pass_no

    def poll_recovery(self, progress: int, pass_no: Optional[int] = None) -> List[int]:
        """Place ids whose recovery-kill trigger fired; each fires once.

        ``progress`` counts the current pass's salvaged (in-process) or
        recomputed (mp) cells. ``pass_no`` defaults to the pass opened by
        the latest :meth:`begin_recovery_pass`.
        """
        with self._lock:
            current = self._pass_no if pass_no is None else pass_no
            fired = [
                spec
                for spec in self._pending_recovery_kills
                if spec.during_pass <= current and spec.after_progress <= progress
            ]
            for spec in fired:
                self._pending_recovery_kills.remove(spec)
        for _ in fired:
            self.record("recovery_kill")
        return [spec.place_id for spec in fired]

    @property
    def pending_recovery_kills(self) -> int:
        with self._lock:
            return len(self._pending_recovery_kills)
