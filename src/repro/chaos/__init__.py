"""Chaos engineering for the DPX10 runtime.

The paper's robustness claim — rebuild the distributed array over the
survivors, restore or recompute, resume — is only ever exercised by one
clean, pre-planned kill in the original evaluation. This package turns
that into an adversarial, *replayable* fault space:

* :mod:`repro.chaos.schedule` — :class:`ChaosSchedule`, a seeded composite
  of kill events, kills fired *while a recovery pass is in flight*,
  near-simultaneous multi-place deaths, slow-place throttles, and message
  chaos; fully determined by one RNG seed and JSON round-trippable;
* :mod:`repro.chaos.network` — :class:`ChaosNetwork` (modelled delay /
  drop / duplication over :class:`~repro.apgas.network.NetworkModel`) and
  :class:`ChaosPipe` (real delay / drop / duplication / reordering on the
  mp engine's master-side message pipes);
* :mod:`repro.chaos.controller` — the per-run :class:`ChaosController`
  that the runtime, workers and recovery consult;
* :mod:`repro.chaos.harness` — the differential harness: run app x engine
  x tile-shape configs under seeded schedules and diff every result cell
  against the serial reference;
* :mod:`repro.chaos.shrink` — ddmin schedule shrinking to a minimal
  reproducing fault sequence, written to a replay file.

CLI: ``python -m repro chaos run|shrink|replay`` (see docs/CHAOS.md).
"""

from repro.chaos.controller import ChaosController
from repro.chaos.harness import CaseResult, CaseSpec, run_case, sweep
from repro.chaos.network import ChaosNetwork, ChaosPipe
from repro.chaos.schedule import (
    ChaosSchedule,
    KillSpec,
    MessageChaos,
    RecoveryKillSpec,
    ThrottleSpec,
)
from repro.chaos.shrink import load_replay, shrink_case, write_replay

__all__ = [
    "ChaosController",
    "ChaosNetwork",
    "ChaosPipe",
    "ChaosSchedule",
    "CaseResult",
    "CaseSpec",
    "KillSpec",
    "MessageChaos",
    "RecoveryKillSpec",
    "ThrottleSpec",
    "load_replay",
    "run_case",
    "shrink_case",
    "sweep",
    "write_replay",
]
