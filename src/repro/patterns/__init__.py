"""The DAG pattern library (paper section VI-B, Figure 5).

"There are often some applications whose DAG diagrams are almost the same
except for their sizes. In view of the reuse concept, we could make those
frequently used DAGs as DAG patterns and establish a DAG pattern library."

Eight built-in patterns ship with the library (the paper's Figure 5 is an
image; prose identifies (a) = MTP's grid, (b) = LCS/SW's diagonal stencil
and (d) = LPS's interval pattern — the remaining five are the standard DP
dependency stencils that framing implies, documented per module):

====================  ==========================================  =================
name                  dependency of (i, j)                        classic use
====================  ==========================================  =================
``grid``          (a) (i-1, j), (i, j-1)                          Manhattan Tourist
``diagonal``      (b) (i-1, j-1), (i-1, j), (i, j-1)              LCS, Smith-Waterman
``row_chain``     (c) (i, j-1)                                    per-row scans
``interval``      (d) (i+1, j), (i, j-1), (i+1, j-1); i <= j      LPS
``column_chain``  (e) (i-1, j)                                    per-column scans
``antidiag``      (f) (i-1, j-1), (i-1, j), (i-1, j+1)            banded alignment
``full_row``      (g) all of row i-1                              2D/1D recurrences
``triangular``    (h) (i, k) k<j and (k, j) k>i; i <= j           matrix chain
====================  ==========================================  =================

Custom patterns subclass :class:`~repro.core.dag.Dag` directly; the 0/1
Knapsack pattern (paper Figures 8/9) is provided as the worked example.
"""

from repro.patterns.antidiag_band import AntiDiagonalDag
from repro.patterns.banded import BandedDiagonalDag
from repro.patterns.base import PATTERNS, StencilDag, get_pattern, register_pattern
from repro.patterns.column_chain import ColumnChainDag
from repro.patterns.diag_chain import DiagChainDag
from repro.patterns.diagonal import DiagonalDag
from repro.patterns.full_row import FullRowDag
from repro.patterns.grid import GridDag
from repro.patterns.interval import IntervalDag
from repro.patterns.knapsack import KnapsackDag
from repro.patterns.row_chain import RowChainDag
from repro.patterns.tensor import TensorWavefrontDag, dense_corner_offsets
from repro.patterns.tree import TreeDag
from repro.patterns.triangular import TriangularDag

__all__ = [
    "AntiDiagonalDag",
    "BandedDiagonalDag",
    "PATTERNS",
    "StencilDag",
    "get_pattern",
    "register_pattern",
    "ColumnChainDag",
    "DiagChainDag",
    "DiagonalDag",
    "FullRowDag",
    "GridDag",
    "IntervalDag",
    "KnapsackDag",
    "RowChainDag",
    "TensorWavefrontDag",
    "dense_corner_offsets",
    "TreeDag",
    "TriangularDag",
]
