"""Pattern (g): full previous-row dependency — simple 2D/1D recurrences.

``(i, j)`` depends on *every* cell of row ``i-1``: the shape of 2D/1D
recurrences like ``D[i,j] = min_k f(D[i-1,k])`` where the whole previous
stage is consulted. Row 0 seeds; each row is a barrier for the next. The
paper notes DPX10 "can also express the type of 2D/iD (i >= 1),
nonetheless, the performance is less than satisfactory" — the ablation
benchmark quantifies exactly that using this pattern.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.api import VertexId
from repro.core.dag import Dag
from repro.patterns.base import register_pattern

__all__ = ["FullRowDag"]


@register_pattern("full_row")
class FullRowDag(Dag):
    """2D/1D recurrence: ``D[i,j] = f(D[i-1, 0..width))``."""

    def get_dependency(self, i: int, j: int) -> List[VertexId]:
        if i == 0:
            return []
        return [VertexId(i - 1, k) for k in range(self.width)]

    def get_anti_dependency(self, i: int, j: int) -> List[VertexId]:
        if i == self.height - 1:
            return []
        return [VertexId(i + 1, k) for k in range(self.width)]

    def static_order(self):
        # everything depends only on the previous row: row-major works
        return [(i, j) for i in range(self.height) for j in range(self.width)]

    def tile_deps(self, ti: int, tj: int, nti: int, ntj: int) -> List[Tuple[int, int]]:
        if ti == 0:
            return []
        return [(ti - 1, k) for k in range(ntj)]

    def tile_boundary_fraction(self, tile_h: int, tile_w: int) -> float:
        # every cell reads the whole previous row: the transferred volume
        # per tile is one full row band from each other tile column
        return 1.0 / tile_h
