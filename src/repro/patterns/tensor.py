"""k-dimensional tensor wavefront patterns (Helal et al., arXiv 2311.17530).

A k-D DP recurrence (3-way MSA is the classic) addresses cells by index
tuples ``(x_0, ..., x_{k-1})`` and depends on cells at fixed negative
offsets — the k-D generalization of the 2-D stencils. Cells of equal
index *sum* form antidiagonal hyperplanes, the wavefronts that execute
in parallel.

:class:`TensorWavefrontDag` runs such a recurrence on the unchanged 2-D
runtime by embedding the tensor through a
:class:`~repro.core.domain.TensorDomain`: the leading ``k-1`` axes
flatten into layout rows, the last axis becomes columns, and every
dependency edge is translated cell-to-cell through the bijection. The
distributions, tiling, shm planes, and recovery never see a k-tuple.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.api import VertexId
from repro.core.dag import Dag
from repro.core.domain import TensorDomain
from repro.errors import PatternError
from repro.util.validation import require

__all__ = ["TensorWavefrontDag", "dense_corner_offsets"]


def dense_corner_offsets(ndim: int) -> Tuple[Tuple[int, ...], ...]:
    """All ``2^k - 1`` nonzero offsets in ``{0, -1}^k``.

    The dense alignment neighborhood: every way to advance a non-empty
    subset of the axes by one. For ``k = 2`` this is the classic
    diagonal stencil ``(-1, -1), (-1, 0), (0, -1)``.
    """
    require(ndim >= 1, "ndim must be >= 1", PatternError)
    out: List[Tuple[int, ...]] = []
    for mask in range(1, 1 << ndim):
        out.append(tuple(-(mask >> a & 1) for a in range(ndim - 1, -1, -1)))
    return tuple(sorted(out))


class TensorWavefrontDag(Dag):
    """A fixed-offset stencil over a dense k-D tensor.

    ``shape`` is the tensor extent per axis; ``offsets`` the dependency
    offsets, each a k-tuple that is componentwise ``<= 0`` and not all
    zero — which proves acyclicity outright, because every edge strictly
    decreases the index sum, so hyperplane order is a topological order.
    Offsets reaching outside the tensor are dropped (boundary cells
    become seeds), exactly like the 2-D stencils.

    >>> dag = TensorWavefrontDag((2, 2, 2))
    >>> (dag.height, dag.width)
    (4, 2)
    >>> corner = dag.domain.to_cell((1, 1, 1))
    >>> sorted(dag.domain.from_cell(d.i, d.j) for d in dag.get_dependency(*corner))
    [(0, 0, 0), (0, 0, 1), (0, 1, 0), (0, 1, 1), (1, 0, 0), (1, 0, 1), (1, 1, 0)]
    """

    def __init__(
        self,
        shape: Sequence[int],
        offsets: Optional[Sequence[Sequence[int]]] = None,
    ) -> None:
        dom = TensorDomain(shape)
        offs = (
            dense_corner_offsets(dom.ndim)
            if offsets is None
            else tuple(tuple(int(x) for x in o) for o in offsets)
        )
        require(len(offs) > 0, "TensorWavefrontDag needs offsets", PatternError)
        require(
            len(set(offs)) == len(offs),
            "duplicate tensor offsets",
            PatternError,
        )
        for o in offs:
            require(
                len(o) == dom.ndim,
                f"offset {o} has {len(o)} components, tensor has {dom.ndim}",
                PatternError,
            )
            require(
                all(x <= 0 for x in o) and any(x < 0 for x in o),
                f"tensor offset {o} must be componentwise <= 0 and nonzero "
                "(every edge must strictly decrease the index sum)",
                PatternError,
            )
        self.offsets_nd: Tuple[Tuple[int, ...], ...] = offs
        self.shape = dom.shape
        h, w = dom.layout_shape
        super().__init__(h, w, domain=dom)

    # -- dependency structure -------------------------------------------------
    def _neighbors(self, i: int, j: int, sign: int) -> List[VertexId]:
        dom: TensorDomain = self.domain  # type: ignore[assignment]
        idx = dom.from_cell(i, j)
        out: List[VertexId] = []
        for off in self.offsets_nd:
            nidx = tuple(x + sign * d for x, d in zip(idx, off))
            if all(0 <= x < n for x, n in zip(nidx, self.shape)):
                out.append(VertexId(*dom.to_cell(nidx)))
        return out

    def get_dependency(self, i: int, j: int) -> List[VertexId]:
        return self._neighbors(i, j, +1)

    def get_anti_dependency(self, i: int, j: int) -> List[VertexId]:
        return self._neighbors(i, j, -1)

    def static_order(self) -> List[Tuple[int, int]]:
        """Hyperplane (index-sum) order — topological by construction."""
        dom: TensorDomain = self.domain  # type: ignore[assignment]
        return [
            dom.to_cell(idx)
            for idx in sorted(dom.indices(), key=lambda t: (sum(t), t))
        ]
