"""Pattern (e): independent top-to-bottom column chains.

``(i, j)`` depends only on ``(i-1, j)``. The column-wise mirror of
``row_chain``; with the paper's default column splicing every chain is
fully place-local, making this the zero-communication reference pattern.
"""

from __future__ import annotations

from repro.patterns.base import StencilDag, register_pattern

__all__ = ["ColumnChainDag"]


@register_pattern("column_chain")
class ColumnChainDag(StencilDag):
    """Column-local recurrence: ``D[i,j] = f(D[i-1,j])``."""

    offsets = ((-1, 0),)
