"""Pattern (f): the three-upper-neighbour band stencil.

``(i, j)`` depends on ``(i-1, j-1)``, ``(i-1, j)`` and ``(i-1, j+1)`` —
the whole previous row's local neighbourhood, as in banded sequence
alignment, Viterbi-style trellises, and seam carving. Row 0 is the seed
row; rows complete strictly in order while cells within a row are
independent.
"""

from __future__ import annotations

from repro.patterns.base import StencilDag, register_pattern

__all__ = ["AntiDiagonalDag"]


@register_pattern("antidiag")
class AntiDiagonalDag(StencilDag):
    """Trellis recurrence: ``D[i,j] = f(D[i-1, j-1..j+1])``."""

    offsets = ((-1, -1), (-1, 0), (-1, 1))
