"""Bottom-up tree DP patterns (Bateni et al., arXiv 1809.03685).

Tree DP computes a value per node from its children's values — the
dependency DAG *is* the tree, directed child → parent. The pattern runs
on the unchanged 2-D runtime by embedding nodes through a
:class:`~repro.core.domain.TreeDomain`: layout row = node height (leaves
at row 0), column = rank within the height level, padding cells
inactive. The bottom-up sweep is then a row-major wavefront, and the
distributions, tiling, recovery and the mp owner map operate on plain
cells.

For locality, pair the pattern with the domain's subtree/heavy-path
partition::

    dom = TreeDomain(parents)
    dag = TreeDag(dom)
    cfg = DPX10Config(custom_dist=dom.make_dist)

which keeps child → parent edges place-local except across the few
light-edge cuts between post-order chunks. Recovery rebuilds the same
partition over the survivors automatically.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.core.api import VertexId
from repro.core.dag import Dag
from repro.core.domain import TreeDomain

__all__ = ["TreeDag"]


class TreeDag(Dag):
    """Child → parent dependencies over a rooted tree.

    Accepts a :class:`~repro.core.domain.TreeDomain` or a raw parent
    vector (``parents[v]`` = parent of node ``v``, root = ``-1``).

    >>> dag = TreeDag([-1, 0, 0, 1, 1])
    >>> root_cell = dag.domain.to_cell(0)
    >>> sorted(dag.domain.from_cell(d.i, d.j) for d in dag.get_dependency(*root_cell))
    [1, 2]
    >>> dag.get_anti_dependency(*dag.domain.to_cell(3)) == [VertexId(*dag.domain.to_cell(1))]
    True
    """

    def __init__(self, tree: Union[TreeDomain, list, tuple, dict]) -> None:
        dom = tree if isinstance(tree, TreeDomain) else TreeDomain(tree)
        h, w = dom.layout_shape
        super().__init__(h, w, domain=dom)

    def is_active(self, i: int, j: int) -> bool:
        return self.domain.cell_active(i, j)

    def get_dependency(self, i: int, j: int) -> List[VertexId]:
        dom: TreeDomain = self.domain  # type: ignore[assignment]
        if not dom.cell_active(i, j):
            return []
        v = dom.from_cell(i, j)
        return [VertexId(*dom.to_cell(c)) for c in dom.children(v)]

    def get_anti_dependency(self, i: int, j: int) -> List[VertexId]:
        dom: TreeDomain = self.domain  # type: ignore[assignment]
        if not dom.cell_active(i, j):
            return []
        p = dom.parent(dom.from_cell(i, j))
        return [] if p < 0 else [VertexId(*dom.to_cell(p))]

    def static_order(self) -> List[Tuple[int, int]]:
        """Post-order (heavy child last) — children always before parents."""
        dom: TreeDomain = self.domain  # type: ignore[assignment]
        return [dom.to_cell(v) for v in dom.post_order]

    def active_cells_in_rect(self, r0: int, r1: int, c0: int, c1: int) -> int:
        dom: TreeDomain = self.domain  # type: ignore[assignment]
        total = 0
        for h in range(max(0, r0), min(self.height, r1)):
            width = len(dom.level(h))
            total += max(0, min(width, c1) - max(0, c0))
        return total
