"""Pattern (c): independent left-to-right row chains.

``(i, j)`` depends only on ``(i, j-1)``; every row computes independently,
seeded at its first column. The embarrassingly parallel end of the DP
spectrum — useful as a scaling baseline and for per-row scan recurrences.
"""

from __future__ import annotations

from repro.patterns.base import StencilDag, register_pattern

__all__ = ["RowChainDag"]


@register_pattern("row_chain")
class RowChainDag(StencilDag):
    """Row-local recurrence: ``D[i,j] = f(D[i,j-1])``."""

    offsets = ((0, -1),)
