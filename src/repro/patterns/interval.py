"""Pattern (d): the interval/palindrome pattern — Longest Palindromic
Subsequence.

Only the upper triangle ``i <= j`` is active; ``(i, j)`` depends on
``(i+1, j)``, ``(i, j-1)`` and ``(i+1, j-1)``. The diagonal ``(i, i)`` is
the seed and computation sweeps toward the top-right corner ``(0, n-1)``,
which holds the final answer — matching the paper's LPS recurrence:

.. code-block:: none

    D(i,i) = 1
    D(i,j) = D(i+1,j-1) + 2             if x_i == x_j
           = max(D(i+1,j), D(i,j-1))    otherwise
"""

from __future__ import annotations

from typing import List, Tuple

from repro.patterns.base import StencilDag, register_pattern

__all__ = ["IntervalDag", "_upper_triangle_count"]


def _upper_triangle_count(r0: int, r1: int, c0: int, c1: int) -> int:
    """Cells with ``i <= j`` in ``[r0, r1) x [c0, c1)``, closed form."""
    if r1 <= r0 or c1 <= c0:
        return 0
    # rows with i <= c0 contribute the full width; rows with c0 < i < c1
    # contribute c1 - i; rows with i >= c1 contribute nothing
    full_hi = min(r1, c0 + 1)
    count = max(0, full_hi - r0) * (c1 - c0)
    lo = max(r0, c0 + 1)
    hi = min(r1, c1)
    if lo < hi:
        n = hi - lo
        count += n * c1 - (lo + hi - 1) * n // 2
    return count


@register_pattern("interval")
class IntervalDag(StencilDag):
    """Triangular interval recurrence over substrings ``x[i..j]``."""

    offsets = ((1, 0), (0, -1), (1, -1))

    def is_active(self, i: int, j: int) -> bool:
        return i <= j

    def active_cells_in_rect(self, r0: int, r1: int, c0: int, c1: int) -> int:
        return _upper_triangle_count(r0, r1, c0, c1)

    def is_active_array(self, rows, cols):
        import numpy as np

        return np.asarray(rows) <= np.asarray(cols)

    def tile_deps(self, ti: int, tj: int, nti: int, ntj: int) -> List[Tuple[int, int]]:
        # same sign stencil, restricted to the active (upper-triangular)
        # tile region
        return [
            (ni, nj)
            for ni, nj in super().tile_deps(ti, tj, nti, ntj)
            if ni <= nj
        ]
