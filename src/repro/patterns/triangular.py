"""Pattern (h): the triangular interval-split pattern — matrix chain class.

The classic 2D/1D interval DP (Algorithm 3.2 of the paper): for ``i < j``,

.. code-block:: none

    D[i,j] = w(i,j) + min_{i < k <= j} { D[i,k-1] + D[k,j] }

so ``(i, j)`` depends on its whole row segment ``(i, k)`` for
``i <= k < j`` and column segment ``(k, j)`` for ``i < k <= j``. Only the
upper triangle ``i <= j`` is active; the diagonal seeds with
``D[i,i] = 0``. Dependency counts grow with interval length, which is why
the paper defers efficient 2D/1D support to future work.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.api import VertexId
from repro.core.dag import Dag
from repro.patterns.base import register_pattern

__all__ = ["TriangularDag"]


@register_pattern("triangular")
class TriangularDag(Dag):
    """Interval-split recurrence over ``x[i..j]`` (matrix chain et al.)."""

    def is_active(self, i: int, j: int) -> bool:
        return i <= j

    def active_cells_in_rect(self, r0: int, r1: int, c0: int, c1: int) -> int:
        from repro.patterns.interval import _upper_triangle_count

        return _upper_triangle_count(r0, r1, c0, c1)

    def get_dependency(self, i: int, j: int) -> List[VertexId]:
        if i >= j:
            return []
        row = [VertexId(i, k) for k in range(i, j)]
        col = [VertexId(k, j) for k in range(i + 1, j + 1)]
        return row + col

    def get_anti_dependency(self, i: int, j: int) -> List[VertexId]:
        # inverse of get_dependency: (i, j) feeds every longer interval
        # extending it to the right on its row, or upward on its column
        right = [VertexId(i, k) for k in range(j + 1, self.width)]
        up = [VertexId(k, j) for k in range(0, i)]
        return right + up

    def static_order(self):
        # row deps sit left (same i, smaller j) and column deps below
        # (larger i): bottom-up rows, left-to-right columns is topological
        return [
            (i, j)
            for i in range(self.height - 1, -1, -1)
            for j in range(i, self.width)
        ]

    def tile_deps(self, ti: int, tj: int, nti: int, ntj: int) -> List[Tuple[int, int]]:
        if ti > tj:
            return []
        row = [(ti, k) for k in range(ti, tj)]
        col = [(k, tj) for k in range(ti + 1, tj + 1)]
        return row + col

    def tile_boundary_fraction(self, tile_h: int, tile_w: int) -> float:
        # each tile consumes full row/column segments of its predecessors
        return 1.0
