"""Banded diagonal pattern: the alignment stencil restricted to a band.

Demonstrates the Refinements' "Initialization of DAG" hook: cells with
``|i - j| > bandwidth`` are marked inactive ("set the unneeded vertices as
finished"), so a banded alignment computes O(n·w) vertices instead of
O(n²) — the standard trick when the sequences are known to be similar.

Not one of the paper's eight built-ins; registered separately as
``banded``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import PatternError
from repro.patterns.base import StencilDag, register_pattern
from repro.util.validation import require

__all__ = ["BandedDiagonalDag"]


@register_pattern("banded")
class BandedDiagonalDag(StencilDag):
    """LCS/alignment stencil active only where ``|i - j| <= bandwidth``."""

    offsets = ((-1, -1), (-1, 0), (0, -1))

    def __init__(self, height: int, width: int, bandwidth: int) -> None:
        require(bandwidth >= 0, f"bandwidth must be >= 0, got {bandwidth}", PatternError)
        require(
            abs(height - width) <= bandwidth,
            f"band of width {bandwidth} cannot reach the corner of a "
            f"{height}x{width} matrix",
            PatternError,
        )
        self.bandwidth = bandwidth
        super().__init__(height, width)

    def is_active(self, i: int, j: int) -> bool:
        return abs(i - j) <= self.bandwidth

    def is_active_array(self, rows, cols):
        import numpy as np

        return np.abs(np.asarray(rows) - np.asarray(cols)) <= self.bandwidth

    def active_cells_in_rect(self, r0: int, r1: int, c0: int, c1: int) -> int:
        # per-row overlap of [i - w, i + w] with [c0, c1)
        w = self.bandwidth
        count = 0
        for i in range(max(0, r0), r1):
            lo = max(c0, i - w)
            hi = min(c1, i + w + 1)
            if hi > lo:
                count += hi - lo
        return count

    def _rect_intersects_band(self, r0: int, r1: int, c0: int, c1: int) -> bool:
        # minimal |i - j| over the (closed) rect corners
        if r1 - 1 < c0:
            dmin = c0 - (r1 - 1)
        elif c1 - 1 < r0:
            dmin = r0 - (c1 - 1)
        else:
            dmin = 0
        return dmin <= self.bandwidth

    def tile_deps(self, ti: int, tj: int, nti: int, ntj: int) -> List[Tuple[int, int]]:
        tile_h = -(-self.height // nti)
        tile_w = -(-self.width // ntj)

        def in_band(t: Tuple[int, int]) -> bool:
            r0 = t[0] * tile_h
            c0 = t[1] * tile_w
            return self._rect_intersects_band(
                r0, min(r0 + tile_h, self.height), c0, min(c0 + tile_w, self.width)
            )

        return [t for t in super().tile_deps(ti, tj, nti, ntj) if in_band(t)]
