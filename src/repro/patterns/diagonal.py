"""Pattern (b): the three-neighbour diagonal stencil — LCS, Smith-Waterman.

``(i, j)`` depends on ``(i-1, j-1)``, ``(i-1, j)`` and ``(i, j-1)``. This
is the paper's Figure 1 / Figure 5(b) pattern used by the LCS demo and the
Smith-Waterman application (and by edit distance, Needleman-Wunsch, and
most pairwise alignment recurrences).
"""

from __future__ import annotations

from repro.patterns.base import StencilDag, register_pattern

__all__ = ["DiagonalDag"]


@register_pattern("diagonal")
class DiagonalDag(StencilDag):
    """2D/0D alignment recurrence with match/insert/delete predecessors."""

    offsets = ((-1, -1), (-1, 0), (0, -1))
