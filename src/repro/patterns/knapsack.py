"""The 0/1 Knapsack custom DAG pattern (paper Figures 8 and 9).

The paper uses Knapsack to demonstrate writing a *custom* pattern: extend
``Dag`` and implement ``get_dependency`` / ``get_anti_dependency`` from
the recurrence

.. code-block:: none

    m(i,j) = m(i-1,j)                                  if w_i > j
           = max(m(i-1,j), m(i-1, j-w_i) + v_i)        if w_i <= j

Row ``i`` covers "items up to i" (0..n_items) and column ``j`` is the
capacity used (0..W), so the matrix is ``(n_items+1) x (W+1)`` and row 0
is the zero-indegree seed row.

Unlike the stencil patterns, the second dependency ``(i-1, j-w_i)`` jumps
a data-dependent distance left — the "nondeterministic dependencies" the
paper blames for 0/1KP's weaker speedup (more cross-place traffic under a
row/column splicing, Figure 10(d)).

Note on fidelity: the paper's Figure 9 ``getAntiDependency`` omits the
``(i+1, j + w_{i+1})`` edge for row 0 even though row 1 cells do depend on
row 0 through it; we implement the exact inverse relation (required for
the indegree bookkeeping to terminate) rather than reproducing that
listing bug.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.api import VertexId
from repro.core.dag import Dag
from repro.errors import PatternError
from repro.util.validation import require

__all__ = ["KnapsackDag"]


class KnapsackDag(Dag):
    """Custom pattern for 0/1 Knapsack with item weights ``weights``.

    ``weights[k]`` is the weight of item ``k+1`` (the item considered when
    moving from row ``k`` to row ``k+1``), matching the paper's
    ``Knapsack.weight(i-1)`` indexing. Weights must be strictly positive
    integers, as the paper assumes.
    """

    def __init__(self, weights: Sequence[int], capacity: int) -> None:
        require(capacity >= 0, f"capacity must be >= 0, got {capacity}", PatternError)
        require(len(weights) >= 1, "need at least one item", PatternError)
        require(
            all(isinstance(w, (int,)) or hasattr(w, "__index__") for w in weights),
            "weights must be integers",
            PatternError,
        )
        ws = [int(w) for w in weights]
        require(
            all(w >= 1 for w in ws),
            "weights must be strictly positive integers",
            PatternError,
        )
        self.weights = tuple(ws)
        self.capacity = capacity
        super().__init__(height=len(ws) + 1, width=capacity + 1)

    def get_dependency(self, i: int, j: int) -> List[VertexId]:
        if i == 0:
            return []
        w = self.weights[i - 1]
        deps = [VertexId(i - 1, j)]
        if w <= j:
            deps.append(VertexId(i - 1, j - w))
        return deps

    def get_anti_dependency(self, i: int, j: int) -> List[VertexId]:
        if i == self.height - 1:
            return []
        w = self.weights[i]  # weight of the item considered by row i+1
        anti = [VertexId(i + 1, j)]
        if j + w <= self.capacity:
            anti.append(VertexId(i + 1, j + w))
        return anti

    def static_order(self):
        # both dependencies live in row i-1: row-major is topological
        return [(i, j) for i in range(self.height) for j in range(self.width)]

    # -- tile-level structure for the cluster simulator ---------------------------
    def tile_deps(self, ti: int, tj: int, nti: int, ntj: int) -> List[Tuple[int, int]]:
        """Tile ``(ti, tj)`` reads the previous tile row back to the
        heaviest item's reach — the data-dependent fan-in that gives 0/1KP
        its extra communication."""
        if ti == 0:
            return []
        tile_w = -(-self.width // ntj)  # ceil
        reach = -(-max(self.weights) // tile_w)
        lo = max(0, tj - reach)
        return [(ti - 1, k) for k in range(lo, tj + 1)]

    def tile_boundary_fraction(self, tile_h: int, tile_w: int) -> float:
        # one boundary row per tile, but scattered reads reduce cache reuse;
        # the simulator's cost model layers the knapsack surcharge on top
        return min(1.0, 1.0 / tile_h + 1.0 / tile_w)
