"""Pattern plumbing: the stencil base class and the pattern registry.

Most DP dependency structures are *stencils*: vertex ``(i, j)`` depends on
``(i + di, j + dj)`` for a fixed offset set. :class:`StencilDag` turns an
offset list into a complete pattern — dependencies, their exact-inverse
anti-dependencies, and the tile-level DAG the cluster simulator runs on —
so each built-in pattern is just a named offset list.
"""

from __future__ import annotations

import difflib
from typing import Dict, List, Tuple, Type

from repro.core.api import VertexId
from repro.core.dag import Dag
from repro.errors import PatternError
from repro.util.validation import require

__all__ = ["StencilDag", "PATTERNS", "register_pattern", "get_pattern"]

Offset = Tuple[int, int]

#: registry of pattern name -> Dag subclass (filled by register_pattern)
PATTERNS: Dict[str, Type[Dag]] = {}


def register_pattern(name: str):
    """Class decorator adding a pattern to the library registry.

    Re-registering the *same* class under its existing name is a no-op,
    and re-registering a fresh definition of the same class (matching
    module and qualified name — the module-reload case) refreshes the
    registry to the newest definition. Registering a genuinely different
    class under an existing name is still an error.
    """

    def wrap(cls: Type[Dag]) -> Type[Dag]:
        prev = PATTERNS.get(name)
        if prev is not None and prev is not cls:
            require(
                prev.__module__ == cls.__module__
                and prev.__qualname__ == cls.__qualname__,
                f"pattern {name!r} already registered to "
                f"{prev.__module__}.{prev.__qualname__}",
                PatternError,
            )
        PATTERNS[name] = cls
        cls.pattern_name = name  # type: ignore[attr-defined]
        return cls

    return wrap


def get_pattern(name: str) -> Type[Dag]:
    """Look up a pattern class by its registry name."""
    if name not in PATTERNS:
        hint = ""
        close = difflib.get_close_matches(name, PATTERNS, n=1)
        if close:
            hint = f"; did you mean {close[0]!r}?"
        raise PatternError(
            f"unknown pattern {name!r}{hint} known: {sorted(PATTERNS)}"
        )
    return PATTERNS[name]


class StencilDag(Dag):
    """A pattern defined by a fixed dependency offset set.

    Subclasses set ``offsets``: ``(di, dj)`` meaning ``(i, j)`` depends on
    ``(i + di, j + dj)``. Offsets falling outside the matrix (or on
    inactive cells, for shaped patterns overriding ``is_active``) are
    dropped, which is what makes border cells zero-indegree seeds.
    """

    #: dependency offsets; override in subclasses
    offsets: Tuple[Offset, ...] = ()

    def __init__(self, height: int, width: int) -> None:
        super().__init__(height, width)
        require(len(self.offsets) > 0, f"{type(self).__name__} has no offsets", PatternError)
        require(
            all(o != (0, 0) for o in self.offsets),
            "a stencil cannot include (0, 0)",
            PatternError,
        )
        require(
            len(set(self.offsets)) == len(self.offsets),
            "duplicate stencil offsets",
            PatternError,
        )

    def _neighbors(self, i: int, j: int, sign: int) -> List[VertexId]:
        out: List[VertexId] = []
        for di, dj in self.offsets:
            ni, nj = i + sign * di, j + sign * dj
            if self.contains(ni, nj) and self.is_active(ni, nj):
                out.append(VertexId(ni, nj))
        return out

    def get_dependency(self, i: int, j: int) -> List[VertexId]:
        return self._neighbors(i, j, +1)

    def get_anti_dependency(self, i: int, j: int) -> List[VertexId]:
        # the inverse relation of a stencil is the negated stencil
        return self._neighbors(i, j, -1)

    # -- vectorized initialization -----------------------------------------------
    def is_active_array(self, rows, cols):
        """Dense stencils: everything is active (shaped subclasses override)."""
        import numpy as np

        # only claim the fast path when is_active was not overridden by a
        # subclass that forgot the array version
        if type(self).is_active is StencilDag.is_active:
            return np.ones(len(rows), dtype=bool)
        return None

    def bulk_indegrees(self, rows, cols):
        """Closed-form indegrees: count in-bounds, active stencil offsets."""
        import numpy as np

        rows = np.asarray(rows)
        cols = np.asarray(cols)
        active_here = self.is_active_array(rows, cols)
        if active_here is None:
            return None
        indeg = np.zeros(len(rows), dtype=np.int32)
        for di, dj in self.offsets:
            ni = rows + di
            nj = cols + dj
            ok = (ni >= 0) & (ni < self.height) & (nj >= 0) & (nj < self.width)
            dep_active = self.is_active_array(ni, nj)
            if dep_active is None:
                return None
            indeg += (ok & dep_active).astype(np.int32)
        indeg[~active_here] = 0
        return indeg

    def static_order(self):
        """Row-major (or row-reversed) order when the stencil permits it.

        Offsets all pointing lexicographically backwards make plain
        row-major a topological order; offsets pointing to larger ``i``
        (the interval family) make bottom-up row order one instead.
        """
        if all(di < 0 or (di == 0 and dj < 0) for di, dj in self.offsets):
            row_range = range(self.height)
        elif all(di > 0 or (di == 0 and dj < 0) for di, dj in self.offsets):
            row_range = range(self.height - 1, -1, -1)
        else:
            return None
        return [
            (i, j)
            for i in row_range
            for j in range(self.width)
            if self.is_active(i, j)
        ]

    # -- tile-level structure for the cluster simulator ---------------------------
    def tile_deps(self, ti: int, tj: int, nti: int, ntj: int) -> List[Tuple[int, int]]:
        """Dependencies between tiles when the matrix is blocked.

        For a stencil the tile DAG is the sign pattern of the stencil:
        tile ``(ti, tj)`` depends on the neighbouring tiles in each
        distinct offset direction.
        """
        dirs = {
            (0 if di == 0 else (1 if di > 0 else -1), 0 if dj == 0 else (1 if dj > 0 else -1))
            for di, dj in self.offsets
        }
        out = []
        for di, dj in sorted(dirs):
            ni, nj = ti + di, tj + dj
            if 0 <= ni < nti and 0 <= nj < ntj:
                out.append((ni, nj))
        return out

    #: fraction of a tile's cells whose dependencies cross the tile border
    #: in each direction — used by the simulator's communication model; a
    #: stencil needs one boundary row/column per direction
    def tile_boundary_fraction(self, tile_h: int, tile_w: int) -> float:
        rows = any(di != 0 for di, _ in self.offsets)
        cols = any(dj != 0 for _, dj in self.offsets)
        frac = 0.0
        if rows:
            frac += 1.0 / tile_h
        if cols:
            frac += 1.0 / tile_w
        return min(1.0, frac)
