"""Diagonal-chain pattern: each cell depends only on ``(i-1, j-1)``.

The matrix decomposes into independent diagonal chains — the dependency
shape of the longest-common-*substring* recurrence (``F[i,j] =
F[i-1,j-1]+1`` on match, else 0), suffix-match counting, and similar
"consecutive run" DPs. Maximal parallelism among the stencils: the
wavefront is a full anti-diagonal from step one.

An extension pattern (registered as ``diag_chain``), not one of the
paper's Figure 5 eight.
"""

from __future__ import annotations

from repro.patterns.base import StencilDag, register_pattern

__all__ = ["DiagChainDag"]


@register_pattern("diag_chain")
class DiagChainDag(StencilDag):
    """Run-length recurrence: ``D[i,j] = f(D[i-1,j-1])``."""

    offsets = ((-1, -1),)
