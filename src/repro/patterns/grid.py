"""Pattern (a): the down-right grid — Manhattan Tourist Problem.

``(i, j)`` depends on its upper neighbour ``(i-1, j)`` and left neighbour
``(i, j-1)``; cell ``(0, 0)`` is the single seed. The wavefront sweeps
along anti-diagonals from the top-left corner.
"""

from __future__ import annotations

from repro.patterns.base import StencilDag, register_pattern

__all__ = ["GridDag"]


@register_pattern("grid")
class GridDag(StencilDag):
    """2D/0D grid recurrence: ``D[i,j] = f(D[i-1,j], D[i,j-1])``."""

    offsets = ((-1, 0), (0, -1))
