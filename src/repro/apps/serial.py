"""Serial reference implementations of every application recurrence.

These are the correctness oracles: the integration and property tests
assert that the distributed framework produces cell-for-cell identical
matrices across engines, schedulers, distributions, cache sizes and fault
plans. They are deliberately straightforward loop implementations —
independent of all framework code — so a bug cannot cancel out.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "lcs_matrix",
    "sw_matrix",
    "swlag_matrices",
    "mtp_matrix",
    "lps_matrix",
    "knapsack_matrix",
    "edit_distance_matrix",
    "nw_matrix",
    "matrix_chain_matrix",
    "tree_knapsack_tables",
    "tree_knapsack_best",
    "tree_mis_tables",
    "tree_mis_best",
    "msa3_matrix",
    "msa3_score",
]

NEG_INF = -(10**15)  # effectively -infinity for integer gap recurrences


def lcs_matrix(x: str, y: str) -> np.ndarray:
    """``(len(x)+1) x (len(y)+1)`` LCS-length matrix; answer at [-1, -1]."""
    m, n = len(x), len(y)
    f = np.zeros((m + 1, n + 1), dtype=np.int64)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            if x[i - 1] == y[j - 1]:
                f[i, j] = f[i - 1, j - 1] + 1
            else:
                f[i, j] = max(f[i - 1, j], f[i, j - 1])
    return f


def sw_matrix(
    x: str,
    y: str,
    match: int = 2,
    mismatch: int = -1,
    gap: int = -1,
) -> np.ndarray:
    """Smith-Waterman similarity matrix with linear gap penalty.

    The paper's Figure 7 scoring: +2 match, -1 mismatch, -1 gap.
    """
    m, n = len(x), len(y)
    h = np.zeros((m + 1, n + 1), dtype=np.int64)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            s = match if x[i - 1] == y[j - 1] else mismatch
            h[i, j] = max(
                0,
                h[i - 1, j - 1] + s,
                h[i - 1, j] + gap,
                h[i, j - 1] + gap,
            )
    return h


def swlag_matrices(
    x: str,
    y: str,
    match: int = 2,
    mismatch: int = -1,
    gap_open: int = -2,
    gap_extend: int = -1,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Smith-Waterman with linear *and* affine gap penalty (SWLAG).

    The Gotoh formulation: ``E`` tracks gaps in ``y`` (horizontal), ``F``
    gaps in ``x`` (vertical), ``H`` the local similarity. Opening a gap
    costs ``gap_open``, extending one ``gap_extend``. Returns
    ``(H, E, F)``.
    """
    m, n = len(x), len(y)
    h = np.zeros((m + 1, n + 1), dtype=np.int64)
    e = np.full((m + 1, n + 1), NEG_INF, dtype=np.int64)
    f = np.full((m + 1, n + 1), NEG_INF, dtype=np.int64)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            s = match if x[i - 1] == y[j - 1] else mismatch
            e[i, j] = max(h[i, j - 1] + gap_open, e[i, j - 1] + gap_extend)
            f[i, j] = max(h[i - 1, j] + gap_open, f[i - 1, j] + gap_extend)
            h[i, j] = max(0, h[i - 1, j - 1] + s, e[i, j], f[i, j])
    return h, e, f


def mtp_matrix(w_down: np.ndarray, w_right: np.ndarray) -> np.ndarray:
    """Manhattan Tourist: longest weighted path from (0,0) to (h-1, w-1).

    ``w_down[i, j]`` weighs the edge (i, j) -> (i+1, j) — shape
    ``(h-1, w)``; ``w_right[i, j]`` weighs (i, j) -> (i, j+1) — shape
    ``(h, w-1)``.
    """
    hh = w_down.shape[0] + 1
    ww = w_right.shape[1] + 1
    assert w_down.shape == (hh - 1, ww) and w_right.shape == (hh, ww - 1)
    d = np.zeros((hh, ww), dtype=np.int64)
    for j in range(1, ww):
        d[0, j] = d[0, j - 1] + w_right[0, j - 1]
    for i in range(1, hh):
        d[i, 0] = d[i - 1, 0] + w_down[i - 1, 0]
        for j in range(1, ww):
            d[i, j] = max(
                d[i - 1, j] + w_down[i - 1, j],
                d[i, j - 1] + w_right[i, j - 1],
            )
    return d


def lps_matrix(s: str) -> np.ndarray:
    """Longest Palindromic Subsequence lengths for every substring.

    ``d[i, j]`` (``i <= j``) is the LPS length of ``s[i..j]``; the answer
    is ``d[0, n-1]``. The lower triangle is left zero.
    """
    n = len(s)
    d = np.zeros((n, n), dtype=np.int64)
    for i in range(n):
        d[i, i] = 1
    for length in range(2, n + 1):
        for i in range(0, n - length + 1):
            j = i + length - 1
            if s[i] == s[j]:
                inner = d[i + 1, j - 1] if i + 1 <= j - 1 else 0
                d[i, j] = inner + 2
            else:
                d[i, j] = max(d[i + 1, j], d[i, j - 1])
    return d


def knapsack_matrix(
    weights: Sequence[int],
    values: Sequence[int],
    capacity: int,
) -> np.ndarray:
    """0/1 Knapsack: ``m[i, j]`` = best value using items 1..i at weight j."""
    n = len(weights)
    assert len(values) == n
    m = np.zeros((n + 1, capacity + 1), dtype=np.int64)
    for i in range(1, n + 1):
        w, v = weights[i - 1], values[i - 1]
        for j in range(capacity + 1):
            if w > j:
                m[i, j] = m[i - 1, j]
            else:
                m[i, j] = max(m[i - 1, j], m[i - 1, j - w] + v)
    return m


def nw_matrix(
    x: str,
    y: str,
    match: int = 1,
    mismatch: int = -1,
    gap: int = -2,
) -> np.ndarray:
    """Needleman-Wunsch global alignment scores; answer at [-1, -1]."""
    m, n = len(x), len(y)
    d = np.zeros((m + 1, n + 1), dtype=np.int64)
    d[:, 0] = gap * np.arange(m + 1)
    d[0, :] = gap * np.arange(n + 1)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            s = match if x[i - 1] == y[j - 1] else mismatch
            d[i, j] = max(
                d[i - 1, j - 1] + s,
                d[i - 1, j] + gap,
                d[i, j - 1] + gap,
            )
    return d


def matrix_chain_matrix(dims: Sequence[int]) -> np.ndarray:
    """Matrix-chain multiplication: minimal multiplications for A_i..A_j.

    ``dims`` has length n+1 for a chain of n matrices (A_k is
    ``dims[k] x dims[k+1]``); ``m[i, j]`` is the cost of the product
    A_i..A_j (0-based, ``i <= j``); the answer is ``m[0, n-1]``. The
    classic 2D/1D recurrence (paper Algorithm 3.2).
    """
    n = len(dims) - 1
    assert n >= 1
    m = np.zeros((n, n), dtype=np.int64)
    for length in range(2, n + 1):
        for i in range(0, n - length + 1):
            j = i + length - 1
            m[i, j] = min(
                m[i, k] + m[k + 1, j] + dims[i] * dims[k + 1] * dims[j + 1]
                for k in range(i, j)
            )
    return m


def edit_distance_matrix(x: str, y: str) -> np.ndarray:
    """Levenshtein distance matrix; answer at [-1, -1]."""
    m, n = len(x), len(y)
    d = np.zeros((m + 1, n + 1), dtype=np.int64)
    d[:, 0] = np.arange(m + 1)
    d[0, :] = np.arange(n + 1)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            cost = 0 if x[i - 1] == y[j - 1] else 1
            d[i, j] = min(
                d[i - 1, j] + 1,
                d[i, j - 1] + 1,
                d[i - 1, j - 1] + cost,
            )
    return d


def _tree_children(parents: Sequence[int]):
    """(children lists, root, bottom-up node order) of a parent vector."""
    n = len(parents)
    kids = [[] for _ in range(n)]
    root = -1
    for v, p in enumerate(parents):
        if p is None or p == -1:
            root = v
        else:
            kids[p].append(v)
    # iterative DFS pre-order; reversed it is a valid bottom-up order
    order = []
    stack = [root]
    while stack:
        v = stack.pop()
        order.append(v)
        stack.extend(kids[v])
    return kids, root, list(reversed(order))


def tree_knapsack_tables(
    parents: Sequence[int],
    weights: Sequence[int],
    values: Sequence[int],
    capacity: int,
) -> list:
    """Precedence-constrained tree knapsack, one table per node.

    ``table[v][c]`` is the best total value of a subtree selection that
    *contains* ``v``, is connected toward ``v`` (a selected node's parent
    within the subtree is selected), and weighs at most ``c``;
    ``NEG_INF`` marks infeasible budgets (``c < weights[v]``).
    """
    n = len(parents)
    assert len(weights) == n and len(values) == n
    kids, _root, bottom_up = _tree_children(parents)
    table: list = [None] * n
    for v in bottom_up:
        # best value obtainable from children selections within budget c,
        # given v itself is selected (children may be skipped for 0/0)
        f = np.zeros(capacity + 1, dtype=np.int64)
        for u in kids[v]:
            nf = f.copy()  # nf[c] starts as "skip u entirely"
            for c in range(capacity + 1):
                for s in range(1, c + 1):
                    if table[u][s] > 0 and f[c - s] + table[u][s] > nf[c]:
                        nf[c] = f[c - s] + table[u][s]
            f = nf
        t = np.full(capacity + 1, NEG_INF, dtype=np.int64)
        w, val = int(weights[v]), int(values[v])
        for c in range(w, capacity + 1):
            t[c] = val + f[c - w]
        table[v] = t
    return table


def tree_knapsack_best(
    parents: Sequence[int],
    weights: Sequence[int],
    values: Sequence[int],
    capacity: int,
) -> int:
    """Best value of any connected-toward-root selection (possibly empty)."""
    _kids, root, _order = _tree_children(parents)
    table = tree_knapsack_tables(parents, weights, values, capacity)
    return int(max(0, int(table[root].max())))


def tree_mis_tables(
    parents: Sequence[int], weights: Sequence[int]
) -> list:
    """Max-weight independent set on a tree: ``(take, skip)`` per node.

    ``take`` is the best weight of an independent set in ``v``'s subtree
    that includes ``v``; ``skip`` the best that excludes it.
    """
    n = len(parents)
    assert len(weights) == n
    kids, _root, bottom_up = _tree_children(parents)
    table: list = [None] * n
    for v in bottom_up:
        take = int(weights[v]) + sum(table[u][1] for u in kids[v])
        skip = sum(max(table[u]) for u in kids[v])
        table[v] = (take, skip)
    return table


def tree_mis_best(parents: Sequence[int], weights: Sequence[int]) -> int:
    """Weight of the maximum-weight independent set of the tree."""
    _kids, root, _order = _tree_children(parents)
    return int(max(tree_mis_tables(parents, weights)[root]))


def msa3_matrix(
    x: str,
    y: str,
    z: str,
    match: int = 1,
    mismatch: int = -1,
    gap: int = -2,
) -> np.ndarray:
    """3-way MSA (3-D Needleman-Wunsch) with sum-of-pairs scoring.

    ``d[i, j, k]`` is the best score aligning ``x[:i]``, ``y[:j]``,
    ``z[:k]``; each alignment column is scored as the sum of its three
    pairwise scores, with a gap-gap pair scoring 0. The answer is
    ``d[-1, -1, -1]``.
    """
    def sub(a: str, b: str) -> int:
        return match if a == b else mismatch

    nx, ny, nz = len(x), len(y), len(z)
    d = np.full((nx + 1, ny + 1, nz + 1), NEG_INF, dtype=np.int64)
    d[0, 0, 0] = 0
    for i in range(nx + 1):
        for j in range(ny + 1):
            for k in range(nz + 1):
                if i == j == k == 0:
                    continue
                best = NEG_INF
                if i and j and k:
                    col = (
                        sub(x[i - 1], y[j - 1])
                        + sub(x[i - 1], z[k - 1])
                        + sub(y[j - 1], z[k - 1])
                    )
                    best = max(best, d[i - 1, j - 1, k - 1] + col)
                if i and j:
                    best = max(
                        best,
                        d[i - 1, j - 1, k] + sub(x[i - 1], y[j - 1]) + 2 * gap,
                    )
                if i and k:
                    best = max(
                        best,
                        d[i - 1, j, k - 1] + sub(x[i - 1], z[k - 1]) + 2 * gap,
                    )
                if j and k:
                    best = max(
                        best,
                        d[i, j - 1, k - 1] + sub(y[j - 1], z[k - 1]) + 2 * gap,
                    )
                if i:
                    best = max(best, d[i - 1, j, k] + 2 * gap)
                if j:
                    best = max(best, d[i, j - 1, k] + 2 * gap)
                if k:
                    best = max(best, d[i, j, k - 1] + 2 * gap)
                d[i, j, k] = best
    return d


def msa3_score(
    x: str,
    y: str,
    z: str,
    match: int = 1,
    mismatch: int = -1,
    gap: int = -2,
) -> int:
    """The optimal 3-way sum-of-pairs alignment score."""
    return int(msa3_matrix(x, y, z, match, mismatch, gap)[-1, -1, -1])
