"""Longest common *substring* on the ``diag_chain`` pattern.

A terminology footnote to the paper: its Figure 1 is captioned "longest
common substring (LCS)" but states the longest common *subsequence*
recurrence. The two are different problems with different DAGs — the
substring DP is

.. code-block:: none

    F[i,j] = F[i-1,j-1] + 1   if x_i == y_j
           = 0                 otherwise

whose only dependency is the diagonal predecessor. This module implements
the actual substring problem; :mod:`repro.apps.lcs` implements the
subsequence the paper's example computes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.core.api import DPX10App, Vertex, dependency_map
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.runtime import DPX10Runtime, RunReport
from repro.patterns.diag_chain import DiagChainDag

__all__ = ["CommonSubstringApp", "common_substring_serial", "solve_common_substring"]


def common_substring_serial(x: str, y: str) -> Tuple[int, str]:
    """Serial oracle: (length, one longest common substring)."""
    m, n = len(x), len(y)
    f = np.zeros((m + 1, n + 1), dtype=np.int64)
    best, end = 0, 0
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            if x[i - 1] == y[j - 1]:
                f[i, j] = f[i - 1, j - 1] + 1
                if f[i, j] > best:
                    best, end = int(f[i, j]), i
    return best, x[end - best : end]


class CommonSubstringApp(DPX10App[int]):
    """Cell (i, j): length of the common suffix of ``x[..i]`` / ``y[..j]``."""

    value_dtype = np.int64

    def __init__(self, x: str, y: str) -> None:
        self.x = x
        self.y = y
        self.length: Optional[int] = None
        self.substring: Optional[str] = None

    def compute(self, i: int, j: int, vertices: Sequence[Vertex[int]]) -> int:
        if i == 0 or j == 0:
            return 0
        if self.x[i - 1] != self.y[j - 1]:
            return 0
        dep = dependency_map(vertices)
        return dep[(i - 1, j - 1)] + 1

    def app_finished(self, dag: Dag[int]) -> None:
        best, end = 0, 0
        for i in range(1, dag.height):
            for j in range(1, dag.width):
                v = int(dag.get_vertex(i, j).get_result())
                if v > best:
                    best, end = v, i
        self.length = best
        self.substring = self.x[end - best : end]


def solve_common_substring(
    x: str,
    y: str,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[CommonSubstringApp, RunReport]:
    """Run longest common substring under DPX10 (diag_chain pattern)."""
    app = CommonSubstringApp(x, y)
    dag = DiagChainDag(len(x) + 1, len(y) + 1)
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
