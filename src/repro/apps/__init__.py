"""DP applications from the paper, written against the DPX10 API.

* :mod:`repro.apps.lcs` — longest common subsequence (Figure 1 demo);
* :mod:`repro.apps.smith_waterman` — Smith-Waterman (Figure 7) and SWLAG,
  the linear+affine-gap variant used throughout the evaluation;
* :mod:`repro.apps.mtp` — Manhattan Tourist Problem;
* :mod:`repro.apps.lps` — Longest Palindromic Subsequence;
* :mod:`repro.apps.knapsack` — 0/1 Knapsack on the custom pattern;
* :mod:`repro.apps.edit_distance` — Levenshtein distance (extra app
  showing pattern reuse);
* :mod:`repro.apps.serial` — plain serial implementations of each
  recurrence, used as correctness oracles by the test suite.
"""

from repro.apps.banded_alignment import BandedEditDistanceApp, solve_banded_edit_distance
from repro.apps.common_substring import CommonSubstringApp, solve_common_substring
from repro.apps.cyk import CNFGrammar, CYKApp, solve_cyk
from repro.apps.edit_distance import EditDistanceApp, solve_edit_distance
from repro.apps.egg_drop import EggDropApp, EggDropDag, solve_egg_drop
from repro.apps.viterbi import ViterbiApp, make_hmm, solve_viterbi
from repro.apps.knapsack import KnapsackApp, solve_knapsack
from repro.apps.lcs import LCSApp, solve_lcs
from repro.apps.matrix_chain import MatrixChainApp, make_chain_dims, solve_matrix_chain
from repro.apps.needleman_wunsch import NWApp, solve_nw
from repro.apps.lps import LPSApp, solve_lps
from repro.apps.mtp import MTPApp, make_mtp_weights, solve_mtp
from repro.apps.smith_waterman import SWApp, SWLAGApp, solve_sw, solve_swlag
from repro.apps.unbounded_knapsack import (
    UnboundedKnapsackApp,
    UnboundedKnapsackDag,
    solve_unbounded_knapsack,
)

__all__ = [
    "BandedEditDistanceApp",
    "solve_banded_edit_distance",
    "CommonSubstringApp",
    "solve_common_substring",
    "CNFGrammar",
    "CYKApp",
    "solve_cyk",
    "EggDropApp",
    "EggDropDag",
    "solve_egg_drop",
    "ViterbiApp",
    "make_hmm",
    "solve_viterbi",
    "EditDistanceApp",
    "solve_edit_distance",
    "KnapsackApp",
    "solve_knapsack",
    "LCSApp",
    "solve_lcs",
    "MatrixChainApp",
    "make_chain_dims",
    "solve_matrix_chain",
    "NWApp",
    "solve_nw",
    "LPSApp",
    "solve_lps",
    "MTPApp",
    "make_mtp_weights",
    "solve_mtp",
    "SWApp",
    "SWLAGApp",
    "solve_sw",
    "solve_swlag",
    "UnboundedKnapsackApp",
    "UnboundedKnapsackDag",
    "solve_unbounded_knapsack",
]
