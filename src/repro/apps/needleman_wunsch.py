"""Needleman-Wunsch global alignment — another diagonal-pattern app.

The global cousin of Smith-Waterman: no clamping at zero, and the
boundaries carry accumulated gap penalties. Same ``diagonal`` DAG pattern,
different ``compute()`` — one more data point for the paper's claim that
the pattern library amortizes across applications.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.core.api import DPX10App, Vertex, dependency_map
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.runtime import DPX10Runtime, RunReport
from repro.patterns.diagonal import DiagonalDag

__all__ = ["NWApp", "solve_nw"]


class NWApp(DPX10App[int]):
    """Global alignment score of the full strings (bottom-right cell)."""

    value_dtype = np.int64

    def __init__(
        self,
        x: str,
        y: str,
        match: int = 1,
        mismatch: int = -1,
        gap: int = -2,
    ) -> None:
        self.x = x
        self.y = y
        self.match = match
        self.mismatch = mismatch
        self.gap = gap
        self.score: Optional[int] = None

    def compute(self, i: int, j: int, vertices: Sequence[Vertex[int]]) -> int:
        if i == 0:
            return self.gap * j
        if j == 0:
            return self.gap * i
        dep = dependency_map(vertices)
        s = self.match if self.x[i - 1] == self.y[j - 1] else self.mismatch
        return max(
            dep[(i - 1, j - 1)] + s,
            dep[(i - 1, j)] + self.gap,
            dep[(i, j - 1)] + self.gap,
        )

    def app_finished(self, dag: Dag[int]) -> None:
        self.score = int(dag.get_vertex(len(self.x), len(self.y)).get_result())


def solve_nw(
    x: str,
    y: str,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
    **scoring,
) -> Tuple[NWApp, RunReport]:
    """Run Needleman-Wunsch global alignment under DPX10."""
    app = NWApp(x, y, **scoring)
    dag = DiagonalDag(len(x) + 1, len(y) + 1)
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
