"""3-way MSA: 3-D Needleman-Wunsch on a tensor wavefront.

Optimal multiple sequence alignment of three sequences (Helal et al.,
arXiv 2311.17530) with sum-of-pairs scoring: cell ``(i, j, k)`` is the
best score aligning the prefixes ``x[:i]``, ``y[:j]``, ``z[:k]``, and
each alignment column scores the sum of its three pairwise scores
(gap-gap pairs score 0). The dependency neighborhood is the seven
nonzero offsets in ``{0, -1}^3`` — the dense corner stencil — so the
antidiagonal *planes* ``i + j + k = const`` are the parallel wavefronts.

The tensor embeds into the 2-D runtime through
:class:`~repro.core.domain.TensorDomain` (``(i, j)`` layout rows,
``k`` columns); the value type is a plain ``int64``, so the mp engine's
zero-copy shm planes carry it exactly like the 2-D alignment apps.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.core.config import DPX10Config
from repro.core.domain import DomainApp, TensorDomain
from repro.core.runtime import DPX10Runtime, RunReport
from repro.patterns.tensor import TensorWavefrontDag
from repro.util.rng import seeded_rng
from repro.util.validation import require

__all__ = ["MSA3App", "make_msa3_instance", "solve_msa3"]

DNA = "ACGT"


def make_msa3_instance(
    length: int, seed: int = 0, alphabet: str = DNA
) -> Tuple[str, str, str]:
    """Three seeded random sequences of (up to) the given length."""
    require(length >= 0, "length must be >= 0")
    rng = seeded_rng(seed, "msa3")
    def one(salt: int) -> str:
        n = int(rng.integers(max(0, length - 2), length + 1)) if length else 0
        return "".join(alphabet[int(c)] for c in rng.integers(0, len(alphabet), size=n))
    return one(0), one(1), one(2)


class MSA3App(DomainApp[int]):
    """Sum-of-pairs 3-D alignment scores; answer at the far corner."""

    value_dtype = np.int64

    def __init__(
        self,
        x: str,
        y: str,
        z: str,
        match: int = 1,
        mismatch: int = -1,
        gap: int = -2,
    ) -> None:
        super().__init__(TensorDomain((len(x) + 1, len(y) + 1, len(z) + 1)))
        self.x, self.y, self.z = x, y, z
        self.match, self.mismatch, self.gap = match, mismatch, gap
        # ord codes shifted by one so axis value i addresses x[i - 1]
        # directly; distinct sentinels at 0 keep prefix-boundary rows
        # from ever scoring as matches
        self._cx = np.array([-1] + [ord(c) for c in x], dtype=np.int64)
        self._cy = np.array([-2] + [ord(c) for c in y], dtype=np.int64)
        self._cz = np.array([-3] + [ord(c) for c in z], dtype=np.int64)
        self.best_score: Optional[int] = None

    def _sub(self, a: str, b: str) -> int:
        return self.match if a == b else self.mismatch

    def offset_score(self, step: Tuple[int, int, int], index: object):
        """Column score of advancing by ``step`` into ``index``.

        ``step`` entries are 0/1 Python ints, so the branch structure is
        static per stencil offset; ``index`` may be a tuple of scalars
        or of equal-length arrays (the hyperplane kernel passes whole
        tiles at once). Declaring this batched form is what opts the app
        into the ``TENSOR_HYPERPLANE`` vectorization class.
        """
        di, dj, dk = step
        i, j, k = index  # type: ignore[misc]
        match, mismatch, gap = self.match, self.mismatch, self.gap
        score = 0
        if di and dj:
            score = score + np.where(self._cx[i] == self._cy[j], match, mismatch)
        elif di or dj:
            score = score + gap
        if di and dk:
            score = score + np.where(self._cx[i] == self._cz[k], match, mismatch)
        elif di or dk:
            score = score + gap
        if dj and dk:
            score = score + np.where(self._cy[j] == self._cz[k], match, mismatch)
        elif dj or dk:
            score = score + gap
        return score

    def compute_index(self, index: object, deps: Dict[object, int]) -> int:
        i, j, k = index  # type: ignore[misc]
        if not deps:
            return 0  # the (0, 0, 0) seed
        best = None
        for (pi, pj, pk), score in deps.items():
            step = (i - pi, j - pj, k - pk)
            cand = score + int(self.offset_score(step, index))
            if best is None or cand > best:
                best = cand
        return int(best)

    def app_finished(self, dag) -> None:
        corner = self.domain.to_cell((len(self.x), len(self.y), len(self.z)))
        self.best_score = int(dag.get_vertex(*corner).get_result())


def solve_msa3(
    x: str,
    y: str,
    z: str,
    match: int = 1,
    mismatch: int = -1,
    gap: int = -2,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[MSA3App, RunReport]:
    """Run 3-way MSA under DPX10 on the tensor domain."""
    app = MSA3App(x, y, z, match, mismatch, gap)
    dag = TensorWavefrontDag(app.domain.shape)
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
