"""Unbounded knapsack — a third custom pattern, with same-row jumps.

Items may repeat, so the take-edge points *within the row*:

.. code-block:: none

    m(i,j) = max( m(i-1, j),            # skip item i
                  m(i, j - w_i) + v_i ) # take item i (again)

Compared to the paper's 0/1 pattern (jump into the previous row) this
gives a row-internal data-dependent chain — a dependency family none of
the built-ins cover, demonstrating the custom-pattern API stretches past
the paper's own example.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.core.api import DPX10App, Vertex, VertexId, dependency_map
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.runtime import DPX10Runtime, RunReport
from repro.errors import PatternError
from repro.util.validation import require

__all__ = [
    "UnboundedKnapsackDag",
    "UnboundedKnapsackApp",
    "unbounded_knapsack_serial",
    "solve_unbounded_knapsack",
]


def unbounded_knapsack_serial(
    weights: Sequence[int], values: Sequence[int], capacity: int
) -> np.ndarray:
    """Serial oracle: the full ``(n+1) x (capacity+1)`` value matrix."""
    n = len(weights)
    m = np.zeros((n + 1, capacity + 1), dtype=np.int64)
    for i in range(1, n + 1):
        w, v = weights[i - 1], values[i - 1]
        for j in range(capacity + 1):
            m[i, j] = m[i - 1, j]
            if w <= j and m[i, j - w] + v > m[i, j]:
                m[i, j] = m[i, j - w] + v
    return m


class UnboundedKnapsackDag(Dag):
    """Custom pattern: skip-edge to the row above, take-edge within the row."""

    def __init__(self, weights: Sequence[int], capacity: int) -> None:
        require(capacity >= 0, "capacity must be >= 0", PatternError)
        require(len(weights) >= 1, "need at least one item", PatternError)
        ws = [int(w) for w in weights]
        require(all(w >= 1 for w in ws), "weights must be >= 1", PatternError)
        self.weights = tuple(ws)
        self.capacity = capacity
        super().__init__(height=len(ws) + 1, width=capacity + 1)

    def get_dependency(self, i: int, j: int) -> List[VertexId]:
        if i == 0:
            return []
        deps = [VertexId(i - 1, j)]
        w = self.weights[i - 1]
        if w <= j:
            deps.append(VertexId(i, j - w))
        return deps

    def get_anti_dependency(self, i: int, j: int) -> List[VertexId]:
        anti: List[VertexId] = []
        if i + 1 < self.height:
            anti.append(VertexId(i + 1, j))
        if i >= 1 and j + self.weights[i - 1] <= self.capacity:
            anti.append(VertexId(i, j + self.weights[i - 1]))
        return anti

    def static_order(self):
        # the take-edge points left within the row, the skip-edge up:
        # row-major is topological
        return [(i, j) for i in range(self.height) for j in range(self.width)]


class UnboundedKnapsackApp(DPX10App[int]):
    """Maximum value with unlimited copies of each item."""

    value_dtype = np.int64

    def __init__(
        self, weights: Sequence[int], values: Sequence[int], capacity: int
    ) -> None:
        require(len(weights) == len(values), "weights/values length mismatch")
        self.weights = list(weights)
        self.values = list(values)
        self.capacity = capacity
        self.best_value: Optional[int] = None

    def compute(self, i: int, j: int, vertices: Sequence[Vertex[int]]) -> int:
        if i == 0:
            return 0
        dep = dependency_map(vertices)
        best = dep[(i - 1, j)]
        w, v = self.weights[i - 1], self.values[i - 1]
        if w <= j:
            take = dep[(i, j - w)] + v
            if take > best:
                best = take
        return best

    def app_finished(self, dag: Dag[int]) -> None:
        self.best_value = int(
            dag.get_vertex(dag.height - 1, dag.width - 1).get_result()
        )


def solve_unbounded_knapsack(
    weights: Sequence[int],
    values: Sequence[int],
    capacity: int,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[UnboundedKnapsackApp, RunReport]:
    """Run unbounded knapsack under DPX10 (custom same-row-jump pattern)."""
    app = UnboundedKnapsackApp(weights, values, capacity)
    dag = UnboundedKnapsackDag(weights, capacity)
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
