"""Longest common subsequence — the paper's Figure 1 walk-through.

Uses the ``diagonal`` pattern (Figure 5(b)) over a
``(len(x)+1) x (len(y)+1)`` matrix whose row/column 0 are boundary cells
computed as zero, exactly like the Smith-Waterman listing in Figure 7. The
final length sits in the bottom-right vertex; ``app_finished`` backtracks
the subsequence itself ("the result can be processed using backtracking
method", section IV).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.core.api import DPX10App, Vertex, dependency_map
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.runtime import DPX10Runtime, RunReport
from repro.patterns.diagonal import DiagonalDag

__all__ = ["LCSApp", "solve_lcs"]


class LCSApp(DPX10App[int]):
    """LCS length via the classic two-string recurrence."""

    value_dtype = np.int64

    def __init__(self, x: str, y: str) -> None:
        self.x = x
        self.y = y
        self.length: Optional[int] = None
        self.subsequence: Optional[str] = None

    def compute(self, i: int, j: int, vertices: Sequence[Vertex[int]]) -> int:
        if i == 0 or j == 0:
            return 0
        dep = dependency_map(vertices)
        if self.x[i - 1] == self.y[j - 1]:
            return dep[(i - 1, j - 1)] + 1
        return max(dep[(i - 1, j)], dep[(i, j - 1)])

    def app_finished(self, dag: Dag[int]) -> None:
        m, n = len(self.x), len(self.y)
        self.length = int(dag.get_vertex(m, n).get_result())
        # standard backtrack from the bottom-right corner
        out = []
        i, j = m, n
        while i > 0 and j > 0:
            if self.x[i - 1] == self.y[j - 1]:
                out.append(self.x[i - 1])
                i -= 1
                j -= 1
            elif dag.get_vertex(i - 1, j).get_result() >= dag.get_vertex(
                i, j - 1
            ).get_result():
                i -= 1
            else:
                j -= 1
        self.subsequence = "".join(reversed(out))


def solve_lcs(
    x: str,
    y: str,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[LCSApp, RunReport]:
    """Run LCS under DPX10 and return the finished app and run report."""
    app = LCSApp(x, y)
    dag = DiagonalDag(len(x) + 1, len(y) + 1)
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
