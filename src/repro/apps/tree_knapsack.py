"""Tree knapsack on the :class:`~repro.patterns.tree.TreeDag` pattern.

The precedence-constrained knapsack (Bateni et al., arXiv 1809.03685):
every node has a weight and a value, and a node may only be selected if
its parent is selected, so feasible selections are subtrees connected
toward the root. Each vertex carries a whole budget table — the value
type is a numpy array of length ``capacity + 1`` — demonstrating that
the framework's "single value per vertex" model handles composite tree
DP states through the object-dtype store.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.core.config import DPX10Config
from repro.core.domain import DomainApp, TreeDomain
from repro.core.runtime import DPX10Runtime, RunReport
from repro.patterns.tree import TreeDag
from repro.util.rng import seeded_rng
from repro.util.validation import require

__all__ = [
    "TreeKnapsackApp",
    "make_tree_instance",
    "solve_tree_knapsack",
]

NEG_INF = -(10**15)


def make_tree_instance(
    n_nodes: int,
    seed: int = 0,
    max_weight: int = 8,
    max_value: int = 100,
) -> Tuple[List[int], List[int], List[int]]:
    """A seeded random rooted tree: ``(parents, weights, values)``.

    Node 0 is the root; node ``v``'s parent is uniform over ``0..v-1``,
    which yields shallow, branchy trees (random recursive trees).
    """
    require(n_nodes >= 1, "need at least one node")
    rng = seeded_rng(seed, "tree")
    parents = [-1] + [
        int(rng.integers(0, v)) for v in range(1, n_nodes)
    ]
    weights = [int(w) for w in rng.integers(1, max_weight + 1, size=n_nodes)]
    values = [int(v) for v in rng.integers(1, max_value + 1, size=n_nodes)]
    return parents, weights, values


class TreeKnapsackApp(DomainApp[np.ndarray]):
    """Per-node budget tables, merged bottom-up over the children.

    ``table[c]`` is the best value of a selection that contains this
    node, stays connected toward it, and weighs at most ``c``
    (``NEG_INF`` = infeasible). The root's table maximum (clamped at 0
    for the empty selection) is the answer.
    """

    value_dtype = None  # object store: each vertex holds an int64 array

    def __init__(
        self,
        domain: TreeDomain,
        weights: Sequence[int],
        values: Sequence[int],
        capacity: int,
    ) -> None:
        super().__init__(domain)
        require(capacity >= 0, f"capacity must be >= 0, got {capacity}")
        require(
            len(weights) == domain.nindices and len(values) == domain.nindices,
            "weights/values must have one entry per tree node",
        )
        self.weights = [int(w) for w in weights]
        self.values = [int(v) for v in values]
        self.capacity = int(capacity)
        self.best_value: Optional[int] = None

    def compute_index(
        self, index: object, deps: Dict[object, np.ndarray]
    ) -> np.ndarray:
        v = int(index)  # type: ignore[call-overload]
        cap = self.capacity
        # best children value within each budget, node v itself selected
        f = np.zeros(cap + 1, dtype=np.int64)
        for u in sorted(deps):
            child = deps[u]
            nf = f.copy()  # the "skip child u" baseline
            for c in range(cap + 1):
                for s in range(1, c + 1):
                    if child[s] > 0 and f[c - s] + child[s] > nf[c]:
                        nf[c] = f[c - s] + child[s]
            f = nf
        table = np.full(cap + 1, NEG_INF, dtype=np.int64)
        w = self.weights[v]
        if w <= cap:
            table[w:] = self.values[v] + f[: cap + 1 - w]
        return table

    def compute_level(self, nodes, ptr, child_values) -> List[np.ndarray]:
        """Batched form of :meth:`compute_index` for a whole height level.

        The per-child merge is the same max-plus convolution, but with
        the O(capacity^2) inner double loop replaced by one shifted
        vector maximum per occupied child budget. Declaring this opts
        the app into the ``TREE_LEVEL_GATHER`` vectorization class.
        """
        cap = self.capacity
        out: List[np.ndarray] = []
        ptr_l = ptr.tolist()
        for t, v in enumerate(nodes.tolist()):
            f = np.zeros(cap + 1, dtype=np.int64)
            for child in child_values[ptr_l[t]: ptr_l[t + 1]]:
                nf = f.copy()  # the "skip child" baseline
                for s in range(1, cap + 1):
                    if child[s] > 0:
                        np.maximum(
                            nf[s:], f[: cap + 1 - s] + int(child[s]), out=nf[s:]
                        )
                f = nf
            table = np.full(cap + 1, NEG_INF, dtype=np.int64)
            w = self.weights[v]
            if w <= cap:
                table[w:] = self.values[v] + f[: cap + 1 - w]
            out.append(table)
        return out

    def app_finished(self, dag) -> None:
        root_cell = self.domain.to_cell(self.domain.root)
        table = dag.get_vertex(*root_cell).get_result()
        self.best_value = int(max(0, int(table.max())))


def solve_tree_knapsack(
    parents: Sequence[int],
    weights: Sequence[int],
    values: Sequence[int],
    capacity: int,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[TreeKnapsackApp, RunReport]:
    """Run tree knapsack under DPX10 on the tree domain.

    When no config is given, the run partitions by the domain's
    subtree/heavy-path decomposition (``TreeDomain.make_dist``).
    """
    dom = TreeDomain(parents)
    if config is None:
        config = DPX10Config(custom_dist=dom.make_dist)
    app = TreeKnapsackApp(dom, weights, values, capacity)
    dag = TreeDag(dom)
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
