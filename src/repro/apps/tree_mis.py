"""Max-weight independent set on a tree (:class:`~repro.patterns.tree.TreeDag`).

The textbook two-state tree DP: per node, ``take`` is the best weight of
an independent set in the subtree that includes the node (so all
children must be skipped), ``skip`` the best that excludes it (children
free to take or skip). Each vertex carries the ``(take, skip)`` pair as
its value — the smallest interesting composite tree-DP state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.core.config import DPX10Config
from repro.core.domain import DomainApp, TreeDomain
from repro.core.runtime import DPX10Runtime, RunReport
from repro.patterns.tree import TreeDag
from repro.util.validation import require

__all__ = ["TreeMISApp", "solve_tree_mis"]

State = Tuple[int, int]  # (take, skip)


class TreeMISApp(DomainApp[State]):
    """Bottom-up ``(take, skip)`` pairs; answer = max of the root's pair."""

    value_dtype = None  # object store: each vertex holds a (take, skip) tuple

    def __init__(self, domain: TreeDomain, weights: Sequence[int]) -> None:
        super().__init__(domain)
        require(
            len(weights) == domain.nindices,
            "weights must have one entry per tree node",
        )
        self.weights = [int(w) for w in weights]
        self.best_weight: Optional[int] = None

    def compute_index(self, index: object, deps: Dict[object, State]) -> State:
        v = int(index)  # type: ignore[call-overload]
        take = self.weights[v]
        skip = 0
        for u in sorted(deps):
            c_take, c_skip = deps[u]
            take += c_skip
            skip += max(c_take, c_skip)
        return (take, skip)

    def compute_level(self, nodes, ptr, child_values) -> List[State]:
        """Batched form of :meth:`compute_index` for a whole height level.

        ``child_values[ptr[t]:ptr[t + 1]]`` are node ``nodes[t]``'s child
        pairs; both per-node sums fall out of two cumulative sums over
        the flattened children. Declaring this opts the app into the
        ``TREE_LEVEL_GATHER`` vectorization class.
        """
        n = len(child_values)
        if n:
            ct = np.fromiter((c[0] for c in child_values), np.int64, count=n)
            cs = np.fromiter((c[1] for c in child_values), np.int64, count=n)
            cum_s = np.concatenate([[0], np.cumsum(cs)])
            cum_m = np.concatenate([[0], np.cumsum(np.maximum(ct, cs))])
            take_sum = cum_s[ptr[1:]] - cum_s[ptr[:-1]]
            skip_sum = cum_m[ptr[1:]] - cum_m[ptr[:-1]]
        else:
            take_sum = skip_sum = np.zeros(len(nodes), dtype=np.int64)
        wts = np.asarray(self.weights, dtype=np.int64)[nodes]
        return [
            (int(t), int(s)) for t, s in zip(wts + take_sum, skip_sum)
        ]

    def app_finished(self, dag) -> None:
        root_cell = self.domain.to_cell(self.domain.root)
        take, skip = dag.get_vertex(*root_cell).get_result()
        self.best_weight = int(max(take, skip))


def solve_tree_mis(
    parents: Sequence[int],
    weights: Sequence[int],
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[TreeMISApp, RunReport]:
    """Run tree MIS under DPX10 on the tree domain.

    When no config is given, the run partitions by the domain's
    subtree/heavy-path decomposition (``TreeDomain.make_dist``).
    """
    dom = TreeDomain(parents)
    if config is None:
        config = DPX10Config(custom_dist=dom.make_dist)
    app = TreeMISApp(dom, weights)
    dag = TreeDag(dom)
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
