"""Levenshtein edit distance — an extra app demonstrating pattern reuse.

Not part of the paper's evaluation, but exactly the kind of "more demo
applications" its future-work section plans: the same ``diagonal`` pattern
as LCS/Smith-Waterman with a different ``compute()``, showing that a new
2D/0D DP costs only a recurrence, not a new DAG.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.core.api import DPX10App, Vertex, dependency_map
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.runtime import DPX10Runtime, RunReport
from repro.patterns.diagonal import DiagonalDag

__all__ = ["EditDistanceApp", "solve_edit_distance"]


class EditDistanceApp(DPX10App[int]):
    """Minimum insert/delete/substitute operations between two strings."""

    value_dtype = np.int64

    def __init__(self, x: str, y: str) -> None:
        self.x = x
        self.y = y
        self.distance: Optional[int] = None

    def compute(self, i: int, j: int, vertices: Sequence[Vertex[int]]) -> int:
        if i == 0:
            return j
        if j == 0:
            return i
        dep = dependency_map(vertices)
        cost = 0 if self.x[i - 1] == self.y[j - 1] else 1
        return min(
            dep[(i - 1, j)] + 1,
            dep[(i, j - 1)] + 1,
            dep[(i - 1, j - 1)] + cost,
        )

    def app_finished(self, dag: Dag[int]) -> None:
        self.distance = int(
            dag.get_vertex(dag.height - 1, dag.width - 1).get_result()
        )


def solve_edit_distance(
    x: str,
    y: str,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[EditDistanceApp, RunReport]:
    """Run Levenshtein distance under DPX10."""
    app = EditDistanceApp(x, y)
    dag = DiagonalDag(len(x) + 1, len(y) + 1)
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
