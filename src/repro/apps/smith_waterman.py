"""Smith-Waterman local alignment: the paper's Figure 7 app, plus SWLAG.

:class:`SWApp` is a line-for-line port of Figure 7 (linear gap penalty,
+2 match / -1 mismatch / -1 gap). :class:`SWLAGApp` is "Smith-Waterman
algorithm with linear and affine gap penalty" — the application the
evaluation section uses for the overhead (Figure 12) and recovery
(Figure 13) experiments — implemented with the Gotoh three-matrix
recurrence; each vertex carries the ``(H, E, F)`` triple, exercising the
framework's object-valued vertex path.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.apps.serial import NEG_INF
from repro.core.api import DPX10App, Vertex, dependency_map
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.runtime import DPX10Runtime, RunReport
from repro.patterns.diagonal import DiagonalDag

__all__ = ["SWApp", "SWLAGApp", "solve_sw", "solve_swlag"]

#: skew-buffer index metadata keyed by tile shape ``(h, w)``.
#: Module-level so the arrays are built once per process and survive
#: across runs — pooled warm places reuse them request after request.
_SKEW_META_CACHE: dict = {}


def _skew_meta(h: int, w: int):
    """Index arrays for sweeping an ``h×w`` tile in skewed coordinates.

    The kernel copies the tile plus its one-cell top/left halo — virtual
    coordinates ``(vi, vj) = (li + 1, lj + 1)`` over an ``(h+1)×(w+1)``
    region — into a buffer ``B`` laid out so that antidiagonal ``vd = vi
    + vj`` is the contiguous run ``B[vd * (h+1) + vi]``. Precomputed
    here, once per shape:

    * ``vi, vj`` — every virtual cell of the region (for the skew gather)
    * ``b_idx_all`` — each virtual cell's flat slot in ``B``
    * ``li, lj`` — every tile cell (for the unskew scatter)
    * ``b_cell`` — each tile cell's flat slot in ``B``
    * ``spans`` — per-diagonal ``(d, lo, hi)`` bounds with ``li ∈ [lo, hi]``
    """
    cached = _SKEW_META_CACHE.get((h, w))
    if cached is None:
        vi, vj = np.mgrid[0 : h + 1, 0 : w + 1]
        vi, vj = vi.ravel(), vj.ravel()
        b_idx_all = (vi + vj) * (h + 1) + vi
        li, lj = np.mgrid[0:h, 0:w]
        li, lj = li.ravel(), lj.ravel()
        b_cell = (li + lj + 2) * (h + 1) + (li + 1)
        spans = tuple(
            (d, max(0, d - w + 1), min(h - 1, d)) for d in range(h + w - 1)
        )
        cached = (vi, vj, b_idx_all, li, lj, b_cell, spans)
        _SKEW_META_CACHE[(h, w)] = cached
    return cached


class SWApp(DPX10App[int]):
    """Smith-Waterman with linear gap penalty (paper Figure 7)."""

    value_dtype = np.int64

    MATCH_SCORE = 2
    DISMATCH_SCORE = -1
    GAP_PENALTY = -1

    def __init__(self, str1: str, str2: str) -> None:
        self.str1 = str1
        self.str2 = str2
        # character codes as arrays, for the vectorized tile kernel
        self._codes1 = np.fromiter(map(ord, str1), dtype=np.int64, count=len(str1))
        self._codes2 = np.fromiter(map(ord, str2), dtype=np.int64, count=len(str2))
        self.best_score: Optional[int] = None
        #: aligned substrings, gaps as '-' (the "best match" the paper's
        #: omitted result-processing backtrack would print)
        self.alignment: Optional[Tuple[str, str]] = None

    def compute(self, i: int, j: int, vertices: Sequence[Vertex[int]]) -> int:
        if i == 0 or j == 0:
            return 0
        lefttop = left = top = 0
        # coordinate-scan over the dependency list, as in Figure 7
        for vertex in vertices:
            if vertex.i == i - 1 and vertex.j == j - 1:
                lefttop = vertex.get_result()
                lefttop += (
                    self.MATCH_SCORE
                    if self.str1[i - 1] == self.str2[j - 1]
                    else self.DISMATCH_SCORE
                )
            if vertex.i == i - 1 and vertex.j == j:
                top = vertex.get_result() + self.GAP_PENALTY
            if vertex.i == i and vertex.j == j - 1:
                left = vertex.get_result() + self.GAP_PENALTY
        return max(0, lefttop, left, top)

    def compute_tile(self, r0, c0, window, oi, oj, h, w) -> bool:
        """Vectorized tile kernel: one numpy sweep per intra-tile antidiagonal.

        Cells on an antidiagonal ``li + lj = d`` only depend on diagonals
        ``d-1`` and ``d-2``, so processing ``d`` ascending honors the
        wavefront. Boundary cells (``i == 0`` or ``j == 0``) score 0 —
        exactly the window's zero initialization — and are skipped.

        A tile sweep is a long chain of tiny numpy ops — at 64×64 that is
        127 sequential steps — so per-step dispatch, not arithmetic, is
        the wall. The kernel therefore skews the tile (plus its one-cell
        top/left halo) into a buffer where each antidiagonal is a
        **contiguous slice** (see :func:`_skew_meta`): the inner loop is
        five slice ops per diagonal — no ``arange``, no fancy indexing,
        no temporary index arrays — with the match/mismatch submatrix
        pre-skewed once per tile. Skew in, sweep, unskew the tile cells
        back out; ~6× faster than the per-diagonal gather formulation it
        replaces, bit-for-bit identical scores.
        """
        if not window.flags["C_CONTIGUOUS"]:  # pragma: no cover - engines
            # always pass freshly-allocated windows; raveling a strided
            # view would silently write into a copy
            raise ValueError("compute_tile requires a C-contiguous window")
        s1, s2 = self._codes1, self._codes2
        if s1.size == 0 or s2.size == 0:
            return True  # every cell is boundary: the zero init stands
        stride = window.shape[1]
        flat = window.reshape(-1)
        vi, vj, b_idx_all, li, lj, b_cell, spans = _skew_meta(h, w)
        # skew the halo-extended region into B; when the tile sits on the
        # matrix edge (oi == 0 / oj == 0) the virtual halo strip falls
        # outside the window — 'wrap' reads garbage there, which only
        # ever feeds boundary cells whose scores are pinned to 0 below
        w_idx_all = (oi - 1 + vi) * stride + (oj - 1 + vj)
        B = np.empty((h + w + 1) * (h + 1), dtype=window.dtype)
        B[b_idx_all] = flat.take(w_idx_all, mode="wrap")
        B2 = B.reshape(h + w + 1, h + 1)
        # match/mismatch for the whole tile, skewed so that each
        # diagonal's scores are one contiguous row; source indices are
        # clipped at 0 because boundary cells never read their slot
        gi = np.arange(r0, r0 + h)
        gj = np.arange(c0, c0 + w)
        m = np.where(
            s1[np.maximum(gi - 1, 0)][:, None]
            == s2[np.maximum(gj - 1, 0)][None, :],
            self.MATCH_SCORE,
            self.DISMATCH_SCORE,
        )
        msk = np.empty((h + w - 1, h), dtype=window.dtype)
        msk[li + lj, li] = m.reshape(-1)
        gap = self.GAP_PENALTY
        fix_top = r0 == 0  # row-0 cells score 0 by definition
        fix_left = c0 == 0  # ditto column 0
        for d, lo, hi in spans:
            vd = d + 2
            lefttop = B2[vd - 2, lo : hi + 1] + msk[d, lo : hi + 1]
            best = np.maximum(
                B2[vd - 1, lo : hi + 1], B2[vd - 1, lo + 1 : hi + 2]
            )
            best += gap
            out = B2[vd, lo + 1 : hi + 2]
            np.maximum(lefttop, best, out=out)
            np.maximum(out, 0, out=out)
            # pin the matrix-boundary ends of the diagonal back to 0
            # before diagonal d+1 reads them
            if fix_top and lo == 0:
                B2[vd, 1] = 0
            if fix_left and hi == d:
                B2[vd, d + 1] = 0
        # unskew: scatter the finished tile cells back into the window
        flat[(oi + li) * stride + (oj + lj)] = B.take(b_cell)
        return True

    def app_finished(self, dag: Dag[int]) -> None:
        # whole-matrix argmax; to_array takes the runtime's vectorized
        # gather when available, so the scan is one numpy pass
        scores = dag.to_array(fill=0, dtype=np.int64)
        bi, bj = np.unravel_index(int(np.argmax(scores)), scores.shape)
        self.best_score = int(scores[bi, bj])
        self.alignment = self._traceback(scores, int(bi), int(bj))

    def _traceback(self, scores: np.ndarray, i: int, j: int) -> Tuple[str, str]:
        """Walk back from the best cell while scores stay positive.

        At each step pick a predecessor whose score explains this cell
        under the Figure 7 recurrence (diagonal = match/mismatch, up/left
        = gap); stop at a zero cell — the local alignment's start.
        Reads the gathered score matrix rather than per-cell dag lookups:
        the walk is O(alignment length) but each ``get_vertex`` hop costs
        a plane read, which dominated ``app_finished`` under the mp
        engine.
        """

        def h(a: int, b: int) -> int:
            if a < 0 or b < 0:
                return 0
            return int(scores[a, b])

        top: list = []
        bottom: list = []
        while i > 0 and j > 0 and h(i, j) > 0:
            score = h(i, j)
            s = (
                self.MATCH_SCORE
                if self.str1[i - 1] == self.str2[j - 1]
                else self.DISMATCH_SCORE
            )
            if score == h(i - 1, j - 1) + s:
                top.append(self.str1[i - 1])
                bottom.append(self.str2[j - 1])
                i, j = i - 1, j - 1
            elif score == h(i - 1, j) + self.GAP_PENALTY:
                top.append(self.str1[i - 1])
                bottom.append("-")
                i -= 1
            else:
                top.append("-")
                bottom.append(self.str2[j - 1])
                j -= 1
        return "".join(reversed(top)), "".join(reversed(bottom))


class SWLAGApp(DPX10App[tuple]):
    """SWLAG: Smith-Waterman with linear and affine gap penalty (Gotoh).

    Vertex value is the triple ``(H, E, F)``: local similarity, best score
    ending in a horizontal gap, best score ending in a vertical gap.
    """

    value_dtype = None  # tuples: object-valued vertices

    def __init__(
        self,
        str1: str,
        str2: str,
        match: int = 2,
        mismatch: int = -1,
        gap_open: int = -2,
        gap_extend: int = -1,
    ) -> None:
        self.str1 = str1
        self.str2 = str2
        self.match = match
        self.mismatch = mismatch
        self.gap_open = gap_open
        self.gap_extend = gap_extend
        self.best_score: Optional[int] = None

    def compute(self, i: int, j: int, vertices: Sequence[Vertex[tuple]]) -> tuple:
        if i == 0 or j == 0:
            return (0, NEG_INF, NEG_INF)
        dep = dependency_map(vertices)
        h_diag, _, _ = dep[(i - 1, j - 1)]
        h_left, e_left, _ = dep[(i, j - 1)]
        h_top, _, f_top = dep[(i - 1, j)]
        s = self.match if self.str1[i - 1] == self.str2[j - 1] else self.mismatch
        e = max(h_left + self.gap_open, e_left + self.gap_extend)
        f = max(h_top + self.gap_open, f_top + self.gap_extend)
        h = max(0, h_diag + s, e, f)
        return (h, e, f)

    def app_finished(self, dag: Dag[tuple]) -> None:
        self.best_score = max(
            dag.get_vertex(i, j).get_result()[0]
            for i in range(dag.height)
            for j in range(dag.width)
        )


def solve_sw(
    str1: str,
    str2: str,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[SWApp, RunReport]:
    """Run linear-gap Smith-Waterman under DPX10."""
    app = SWApp(str1, str2)
    dag = DiagonalDag(len(str1) + 1, len(str2) + 1)
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report


def solve_swlag(
    str1: str,
    str2: str,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
    **scoring,
) -> Tuple[SWLAGApp, RunReport]:
    """Run affine-gap Smith-Waterman (SWLAG) under DPX10."""
    app = SWLAGApp(str1, str2, **scoring)
    dag = DiagonalDag(len(str1) + 1, len(str2) + 1)
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
