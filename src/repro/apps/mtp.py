"""The Manhattan Tourist Problem on the ``grid`` pattern (Figure 5(a)).

.. code-block:: none

    D(i,j) = max( D(i-1,j) + w(i-1,j, i,j),
                  D(i,j-1) + w(i,j-1, i,j) )

where ``w`` weighs the street segments of the Manhattan grid. Edge
weights are supplied as two arrays (downward and rightward segments);
:func:`make_mtp_weights` generates a seeded random instance.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.core.api import DPX10App, Vertex, dependency_map
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.runtime import DPX10Runtime, RunReport
from repro.patterns.grid import GridDag
from repro.util.rng import seeded_rng
from repro.util.validation import require

__all__ = ["MTPApp", "make_mtp_weights", "solve_mtp"]


def make_mtp_weights(
    height: int, width: int, seed: int = 0, max_weight: int = 9
) -> Tuple[np.ndarray, np.ndarray]:
    """Random street weights for a ``height x width`` intersection grid.

    Returns ``(w_down, w_right)`` with shapes ``(height-1, width)`` and
    ``(height, width-1)``.
    """
    rng = seeded_rng(seed, "mtp")
    w_down = rng.integers(0, max_weight + 1, size=(height - 1, width), dtype=np.int64)
    w_right = rng.integers(0, max_weight + 1, size=(height, width - 1), dtype=np.int64)
    return w_down, w_right


class MTPApp(DPX10App[int]):
    """Longest weighted monotone path from (0, 0) to the far corner."""

    value_dtype = np.int64

    def __init__(self, w_down: np.ndarray, w_right: np.ndarray) -> None:
        require(
            w_down.shape[0] + 1 == w_right.shape[0]
            and w_down.shape[1] == w_right.shape[1] + 1,
            f"inconsistent weight shapes {w_down.shape} / {w_right.shape}",
        )
        self.w_down = w_down
        self.w_right = w_right
        self.best_path_weight: Optional[int] = None

    def compute(self, i: int, j: int, vertices: Sequence[Vertex[int]]) -> int:
        if i == 0 and j == 0:
            return 0
        dep = dependency_map(vertices)
        candidates = []
        if i > 0:
            candidates.append(dep[(i - 1, j)] + int(self.w_down[i - 1, j]))
        if j > 0:
            candidates.append(dep[(i, j - 1)] + int(self.w_right[i, j - 1]))
        return max(candidates)

    def app_finished(self, dag: Dag[int]) -> None:
        self.best_path_weight = int(
            dag.get_vertex(dag.height - 1, dag.width - 1).get_result()
        )


def solve_mtp(
    w_down: np.ndarray,
    w_right: np.ndarray,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[MTPApp, RunReport]:
    """Run the Manhattan Tourist Problem under DPX10."""
    app = MTPApp(w_down, w_right)
    dag = GridDag(w_right.shape[0], w_down.shape[1])
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
