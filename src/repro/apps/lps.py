"""Longest Palindromic Subsequence on the ``interval`` pattern (Figure 5(d)).

The paper's recurrence:

.. code-block:: none

    D(i,i) = 1
    D(i,j) = 2                          if x_i = x_j and j = i+1
           = D(i+1,j-1) + 2             if x_i = x_j
           = max(D(i+1,j), D(i,j-1))    if x_i != x_j

Only ``i <= j`` cells are active; the ``j = i+1`` case falls out of the
pattern dropping the inactive ``(i+1, j-1)`` dependency (an empty inner
substring contributes 0).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.core.api import DPX10App, Vertex, dependency_map
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.runtime import DPX10Runtime, RunReport
from repro.patterns.interval import IntervalDag
from repro.util.validation import require

__all__ = ["LPSApp", "solve_lps"]


class LPSApp(DPX10App[int]):
    """LPS length of every substring; the answer is ``D(0, n-1)``."""

    value_dtype = np.int64

    def __init__(self, s: str) -> None:
        require(len(s) >= 1, "LPS needs a non-empty string")
        self.s = s
        self.length: Optional[int] = None

    def compute(self, i: int, j: int, vertices: Sequence[Vertex[int]]) -> int:
        if i == j:
            return 1
        dep = dependency_map(vertices)
        if self.s[i] == self.s[j]:
            return dep.get((i + 1, j - 1), 0) + 2
        return max(dep[(i + 1, j)], dep[(i, j - 1)])

    def app_finished(self, dag: Dag[int]) -> None:
        self.length = int(dag.get_vertex(0, dag.width - 1).get_result())


def solve_lps(
    s: str,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[LPSApp, RunReport]:
    """Run Longest Palindromic Subsequence under DPX10."""
    app = LPSApp(s)
    dag = IntervalDag(len(s), len(s))
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
