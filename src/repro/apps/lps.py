"""Longest Palindromic Subsequence on the ``interval`` pattern (Figure 5(d)).

The paper's recurrence:

.. code-block:: none

    D(i,i) = 1
    D(i,j) = 2                          if x_i = x_j and j = i+1
           = D(i+1,j-1) + 2             if x_i = x_j
           = max(D(i+1,j), D(i,j-1))    if x_i != x_j

Only ``i <= j`` cells are active; the ``j = i+1`` case falls out of the
pattern dropping the inactive ``(i+1, j-1)`` dependency (an empty inner
substring contributes 0).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.core.api import DPX10App, Vertex, dependency_map
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.runtime import DPX10Runtime, RunReport
from repro.patterns.interval import IntervalDag
from repro.util.validation import require

__all__ = ["LPSApp", "solve_lps"]


class LPSApp(DPX10App[int]):
    """LPS length of every substring; the answer is ``D(0, n-1)``."""

    value_dtype = np.int64

    def __init__(self, s: str) -> None:
        require(len(s) >= 1, "LPS needs a non-empty string")
        self.s = s
        # character codes as an array, for the vectorized tile kernel
        self._codes = np.fromiter(map(ord, s), dtype=np.int64, count=len(s))
        self.length: Optional[int] = None

    def compute(self, i: int, j: int, vertices: Sequence[Vertex[int]]) -> int:
        if i == j:
            return 1
        dep = dependency_map(vertices)
        if self.s[i] == self.s[j]:
            return dep.get((i + 1, j - 1), 0) + 2
        return max(dep[(i + 1, j)], dep[(i, j - 1)])

    def compute_tile(self, r0, c0, window, oi, oj, h, w) -> bool:
        """Vectorized tile kernel: one numpy sweep per ``k = j - i`` diagonal.

        All three dependencies of a ``k``-diagonal cell lie on diagonals
        ``k-1`` and ``k-2``, so ascending ``k`` honors the wavefront.
        Inactive cells (``i > j``) are never written; the ``(i+1, j-1)``
        read for ``j = i+1`` lands on one and sees the window's zero —
        the same "empty inner substring contributes 0" the per-cell
        recurrence gets from ``dep.get(..., 0)``.
        """
        codes = self._codes
        for k in range(max(0, c0 - (r0 + h - 1)), c0 + w - r0):
            t = r0 + k - c0  # lj = li + t on this diagonal
            li = np.arange(max(0, -t), min(h - 1, w - 1 - t) + 1, dtype=np.int64)
            if li.size == 0:
                continue
            wi, wj = oi + li, oj + li + t
            if k == 0:
                window[wi, wj] = 1
                continue
            gi = r0 + li
            eq = codes[gi] == codes[gi + k]
            inner = window[wi + 1, wj - 1] + 2
            other = np.maximum(window[wi + 1, wj], window[wi, wj - 1])
            window[wi, wj] = np.where(eq, inner, other)
        return True

    def app_finished(self, dag: Dag[int]) -> None:
        self.length = int(dag.get_vertex(0, dag.width - 1).get_result())


def solve_lps(
    s: str,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[LPSApp, RunReport]:
    """Run Longest Palindromic Subsequence under DPX10."""
    app = LPSApp(s)
    dag = IntervalDag(len(s), len(s))
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
