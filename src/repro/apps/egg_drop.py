"""The egg-drop puzzle — a second custom DAG pattern.

Worst-case minimal trials to find the critical floor with ``e`` eggs and
``f`` floors:

.. code-block:: none

    D[1][f] = f
    D[e][0] = 0
    D[e][f] = 1 + min_{1<=k<=f} max( D[e-1][k-1],   # egg breaks
                                     D[e][f-k] )    # egg survives

Cell ``(e, f)`` consults the whole prefix of its own row *and* the prefix
of the row above — a dependency shape no stencil covers, so like Knapsack
in the paper's section VII-B it gets a custom ``Dag`` subclass. Row 0
(zero eggs) is inactive.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.core.api import DPX10App, Vertex, VertexId, dependency_map
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.runtime import DPX10Runtime, RunReport
from repro.util.validation import require

__all__ = ["EggDropDag", "EggDropApp", "egg_drop_serial", "solve_egg_drop"]


def egg_drop_serial(eggs: int, floors: int) -> np.ndarray:
    """Serial oracle: the full ``(eggs+1) x (floors+1)`` trial matrix."""
    d = np.zeros((eggs + 1, floors + 1), dtype=np.int64)
    d[1, :] = np.arange(floors + 1)
    for e in range(2, eggs + 1):
        for f in range(1, floors + 1):
            d[e, f] = 1 + min(
                max(d[e - 1, k - 1], d[e, f - k]) for k in range(1, f + 1)
            )
    return d


class EggDropDag(Dag):
    """Custom pattern: row-prefix + previous-row-prefix dependencies."""

    def __init__(self, eggs: int, floors: int) -> None:
        require(eggs >= 1, f"need at least one egg, got {eggs}")
        require(floors >= 0, f"floors must be >= 0, got {floors}")
        self.eggs = eggs
        self.floors = floors
        super().__init__(height=eggs + 1, width=floors + 1)

    def is_active(self, i: int, j: int) -> bool:
        return i >= 1  # row 0 = zero eggs: undefined

    def get_dependency(self, i: int, j: int) -> List[VertexId]:
        if i <= 1 or j == 0:
            return []  # one-egg row and zero-floor column are closed form
        prev_row = [VertexId(i - 1, k) for k in range(j)]
        own_row = [VertexId(i, k) for k in range(j)]
        return prev_row + own_row

    def get_anti_dependency(self, i: int, j: int) -> List[VertexId]:
        out: List[VertexId] = []
        if i >= 2:
            out.extend(VertexId(i, k) for k in range(j + 1, self.width))
        if i + 1 < self.height:
            out.extend(VertexId(i + 1, k) for k in range(j + 1, self.width))
        return out


class EggDropApp(DPX10App[int]):
    """Worst-case optimal trial count; the answer is cell (eggs, floors)."""

    value_dtype = np.int64

    def __init__(self, eggs: int, floors: int) -> None:
        self.eggs = eggs
        self.floors = floors
        self.trials: Optional[int] = None

    def compute(self, e: int, f: int, vertices: Sequence[Vertex[int]]) -> int:
        if f == 0:
            return 0
        if e == 1:
            return f
        dep = dependency_map(vertices)
        return 1 + min(
            max(dep[(e - 1, k - 1)], dep[(e, f - k)]) for k in range(1, f + 1)
        )

    def app_finished(self, dag: Dag[int]) -> None:
        self.trials = int(dag.get_vertex(self.eggs, self.floors).get_result())


def solve_egg_drop(
    eggs: int,
    floors: int,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[EggDropApp, RunReport]:
    """Run the egg-drop DP under DPX10 with its custom pattern."""
    app = EggDropApp(eggs, floors)
    dag = EggDropDag(eggs, floors)
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
