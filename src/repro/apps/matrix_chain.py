"""Matrix-chain multiplication — a genuine 2D/1D application.

The paper's Algorithm 3.2 class: each cell consults O(n) predecessors
(every split point of its interval). DPX10 "can also express the type of
2D/iD (i >= 1), nonetheless, the performance is less than satisfactory" —
this app makes that trade concrete on the ``triangular`` pattern, and the
2D/1D ablation benchmark quantifies it.

Cell ``(i, j)`` (``i <= j``) holds the minimal multiplication count for
the product A_i .. A_j; ``compute()`` scans the split points exactly as
the textbook recurrence does.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.core.api import DPX10App, Vertex, dependency_map
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.runtime import DPX10Runtime, RunReport
from repro.patterns.triangular import TriangularDag
from repro.util.rng import seeded_rng
from repro.util.validation import require

__all__ = ["MatrixChainApp", "make_chain_dims", "solve_matrix_chain"]


def make_chain_dims(n_matrices: int, seed: int = 0, max_dim: int = 50) -> List[int]:
    """Random dimension vector for a chain of ``n_matrices`` matrices."""
    require(n_matrices >= 1, "need at least one matrix")
    rng = seeded_rng(seed, "matrix-chain")
    return [int(d) for d in rng.integers(1, max_dim + 1, size=n_matrices + 1)]


class MatrixChainApp(DPX10App[int]):
    """Minimal scalar multiplications to evaluate A_0 .. A_{n-1}."""

    value_dtype = np.int64

    def __init__(self, dims: Sequence[int]) -> None:
        require(len(dims) >= 2, "dims needs at least 2 entries")
        self.dims = list(dims)
        self.min_multiplications: Optional[int] = None

    def compute(self, i: int, j: int, vertices: Sequence[Vertex[int]]) -> int:
        if i == j:
            return 0
        dep = dependency_map(vertices)
        dims = self.dims
        return min(
            dep[(i, k)] + dep[(k + 1, j)] + dims[i] * dims[k + 1] * dims[j + 1]
            for k in range(i, j)
        )

    def app_finished(self, dag: Dag[int]) -> None:
        self.min_multiplications = int(
            dag.get_vertex(0, dag.width - 1).get_result()
        )


def solve_matrix_chain(
    dims: Sequence[int],
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[MatrixChainApp, RunReport]:
    """Run matrix-chain ordering under DPX10 (2D/1D triangular pattern)."""
    app = MatrixChainApp(dims)
    n = len(dims) - 1
    dag = TriangularDag(n, n)
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
