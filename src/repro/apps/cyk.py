"""CYK parsing on the ``triangular`` pattern — set-valued vertices.

Membership parsing for a context-free grammar in Chomsky normal form:
cell ``(i, j)`` holds the set of nonterminals deriving the substring
``s[i..j]`` (inclusive). The recurrence consults every split point,

.. code-block:: none

    N ∈ T[i,j]  iff  N -> A B  with  A ∈ T[i,k], B ∈ T[k+1,j]  for some k

which is the same interval-split dependency shape as matrix chain —
``TriangularDag`` serves unchanged. The vertex value is a ``frozenset``
of nonterminal names, exercising the framework's object-valued store.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro.apgas.failure import FaultPlan
from repro.core.api import DPX10App, Vertex, dependency_map
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.runtime import DPX10Runtime, RunReport
from repro.patterns.triangular import TriangularDag
from repro.util.validation import require

__all__ = ["CNFGrammar", "CYKApp", "cyk_serial", "solve_cyk"]


class CNFGrammar:
    """A Chomsky-normal-form grammar.

    ``terminal_rules``: ``{terminal_char: {nonterminals}}``;
    ``binary_rules``: list of ``(head, left, right)`` productions.
    """

    def __init__(
        self,
        start: str,
        terminal_rules: Dict[str, Sequence[str]],
        binary_rules: Sequence[Tuple[str, str, str]],
    ) -> None:
        require(bool(start), "grammar needs a start symbol")
        self.start = start
        self.terminal_rules = {t: frozenset(ns) for t, ns in terminal_rules.items()}
        self.binary_rules = list(binary_rules)

    def nonterminals_for_terminal(self, ch: str) -> FrozenSet[str]:
        return self.terminal_rules.get(ch, frozenset())

    def combine(self, left: FrozenSet[str], right: FrozenSet[str]) -> FrozenSet[str]:
        """Heads derivable from adjacent spans with the given symbol sets."""
        return frozenset(
            head
            for head, a, b in self.binary_rules
            if a in left and b in right
        )

    @classmethod
    def balanced_parentheses(cls) -> "CNFGrammar":
        """S -> ( ) | ( S ) | S S, in CNF — the classic smoke grammar."""
        return cls(
            start="S",
            terminal_rules={"(": ["L"], ")": ["R"]},
            binary_rules=[
                ("S", "L", "R"),  # ()
                ("S", "L", "X"),  # ( S )
                ("X", "S", "R"),
                ("S", "S", "S"),  # concatenation
            ],
        )


def cyk_serial(grammar: CNFGrammar, s: str) -> bool:
    """Serial oracle: does the grammar derive ``s``?"""
    n = len(s)
    if n == 0:
        return False
    table: Dict[Tuple[int, int], FrozenSet[str]] = {}
    for i, ch in enumerate(s):
        table[(i, i)] = grammar.nonterminals_for_terminal(ch)
    for length in range(2, n + 1):
        for i in range(0, n - length + 1):
            j = i + length - 1
            acc: set = set()
            for k in range(i, j):
                acc |= grammar.combine(table[(i, k)], table[(k + 1, j)])
            table[(i, j)] = frozenset(acc)
    return grammar.start in table[(0, n - 1)]


class CYKApp(DPX10App[FrozenSet[str]]):
    """Cell (i, j): nonterminals deriving ``s[i..j]``."""

    value_dtype = None  # frozensets: object-valued vertices

    def __init__(self, grammar: CNFGrammar, s: str) -> None:
        require(len(s) >= 1, "CYK needs a non-empty string")
        self.grammar = grammar
        self.s = s
        self.derivable: Optional[bool] = None

    def compute(
        self, i: int, j: int, vertices: Sequence[Vertex[FrozenSet[str]]]
    ) -> FrozenSet[str]:
        if i == j:
            return self.grammar.nonterminals_for_terminal(self.s[i])
        dep = dependency_map(vertices)
        acc: set = set()
        for k in range(i, j):
            acc |= self.grammar.combine(dep[(i, k)], dep[(k + 1, j)])
        return frozenset(acc)

    def app_finished(self, dag: Dag[FrozenSet[str]]) -> None:
        top = dag.get_vertex(0, dag.width - 1).get_result()
        self.derivable = self.grammar.start in top


def solve_cyk(
    grammar: CNFGrammar,
    s: str,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[CYKApp, RunReport]:
    """Run CYK membership parsing under DPX10 (triangular pattern)."""
    app = CYKApp(grammar, s)
    n = len(s)
    dag = TriangularDag(n, n)
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
