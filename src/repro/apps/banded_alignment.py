"""Banded edit distance on the ``banded`` pattern.

The classic similar-sequences optimization: when the true edit distance is
at most ``bandwidth``, restricting the DP to the diagonal band
``|i - j| <= bandwidth`` gives the exact answer while computing O(n·w)
vertices instead of O(n²). Built on the Refinements' initialization hook
(out-of-band cells are born finished) — the framework never schedules
them.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.core.api import DPX10App, Vertex, dependency_map
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.runtime import DPX10Runtime, RunReport
from repro.patterns.banded import BandedDiagonalDag

__all__ = ["BandedEditDistanceApp", "solve_banded_edit_distance"]

_BIG = 10**9  # stands in for +infinity outside the band


class BandedEditDistanceApp(DPX10App[int]):
    """Levenshtein distance restricted to a diagonal band.

    Exact whenever the true distance is at most the bandwidth; a neighbour
    outside the band is treated as unreachable (+infinity).
    """

    value_dtype = np.int64

    def __init__(self, x: str, y: str) -> None:
        self.x = x
        self.y = y
        self.distance: Optional[int] = None

    def compute(self, i: int, j: int, vertices: Sequence[Vertex[int]]) -> int:
        if i == 0:
            return j
        if j == 0:
            return i
        dep = dependency_map(vertices)
        cost = 0 if self.x[i - 1] == self.y[j - 1] else 1
        return min(
            dep.get((i - 1, j), _BIG) + 1,
            dep.get((i, j - 1), _BIG) + 1,
            dep[(i - 1, j - 1)] + cost,  # the diagonal is always in-band
        )

    def app_finished(self, dag: Dag[int]) -> None:
        self.distance = int(
            dag.get_vertex(dag.height - 1, dag.width - 1).get_result()
        )


def solve_banded_edit_distance(
    x: str,
    y: str,
    bandwidth: int,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[BandedEditDistanceApp, RunReport]:
    """Run banded Levenshtein distance under DPX10."""
    app = BandedEditDistanceApp(x, y)
    dag = BandedDiagonalDag(len(x) + 1, len(y) + 1, bandwidth)
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
