"""Viterbi decoding on the ``full_row`` pattern.

The most-likely HMM state path: a trellis where every timestep consults
all states of the previous step,

.. code-block:: none

    D[t][s] = log_emit[s][obs_t] + max_s' ( D[t-1][s'] + log_trans[s'][s] )

which is precisely the ``full_row`` 2D/1D built-in. State counts are small
in practice, so this is the regime where full-row dependencies are cheap —
the counterpoint to the matrix-chain app's expensive 2D/1D.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.core.api import DPX10App, Vertex, dependency_map
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.runtime import DPX10Runtime, RunReport
from repro.patterns.full_row import FullRowDag
from repro.util.rng import seeded_rng
from repro.util.validation import require

__all__ = ["ViterbiApp", "make_hmm", "solve_viterbi", "viterbi_serial"]


def make_hmm(
    n_states: int, n_symbols: int, length: int, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """A random HMM instance: (log_init, log_trans, log_emit, observations)."""
    require(n_states >= 1 and n_symbols >= 1 and length >= 1, "bad HMM shape")
    rng = seeded_rng(seed, "hmm")

    def log_rows(shape):
        p = rng.random(shape) + 0.05
        p /= p.sum(axis=-1, keepdims=True)
        return np.log(p)

    log_init = log_rows(n_states)
    log_trans = log_rows((n_states, n_states))
    log_emit = log_rows((n_states, n_symbols))
    obs = rng.integers(0, n_symbols, size=length)
    return log_init, log_trans, log_emit, obs


def viterbi_serial(
    log_init: np.ndarray,
    log_trans: np.ndarray,
    log_emit: np.ndarray,
    obs: np.ndarray,
) -> float:
    """Serial oracle: the log-probability of the best state path."""
    d = log_init + log_emit[:, obs[0]]
    for t in range(1, len(obs)):
        d = log_emit[:, obs[t]] + (d[:, None] + log_trans).max(axis=0)
    return float(d.max())


class ViterbiApp(DPX10App[float]):
    """Trellis cell (t, s): best log-prob of any path ending in state s."""

    value_dtype = np.float64

    def __init__(
        self,
        log_init: np.ndarray,
        log_trans: np.ndarray,
        log_emit: np.ndarray,
        obs: np.ndarray,
    ) -> None:
        self.log_init = log_init
        self.log_trans = log_trans
        self.log_emit = log_emit
        self.obs = obs
        self.best_log_prob: Optional[float] = None

    def compute(self, t: int, s: int, vertices: Sequence[Vertex[float]]) -> float:
        emit = float(self.log_emit[s, self.obs[t]])
        if t == 0:
            return float(self.log_init[s]) + emit
        dep = dependency_map(vertices)
        return emit + max(
            dep[(t - 1, sp)] + float(self.log_trans[sp, s])
            for sp in range(self.log_trans.shape[0])
        )

    def app_finished(self, dag: Dag[float]) -> None:
        last = dag.height - 1
        self.best_log_prob = max(
            float(dag.get_vertex(last, s).get_result()) for s in range(dag.width)
        )


def solve_viterbi(
    log_init: np.ndarray,
    log_trans: np.ndarray,
    log_emit: np.ndarray,
    obs: np.ndarray,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[ViterbiApp, RunReport]:
    """Run Viterbi decoding under DPX10 (full_row trellis pattern)."""
    app = ViterbiApp(log_init, log_trans, log_emit, obs)
    dag = FullRowDag(len(obs), log_trans.shape[0])
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
