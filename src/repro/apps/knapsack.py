"""0/1 Knapsack on the custom :class:`~repro.patterns.knapsack.KnapsackDag`.

The paper's section VII-B demo: the pattern supplies the data-dependent
``(i-1, j - w_i)`` edges, and ``compute()`` is the two-case recurrence of
Equation (2). ``app_finished`` also backtracks the chosen item set.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.core.api import DPX10App, Vertex, dependency_map
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.runtime import DPX10Runtime, RunReport
from repro.patterns.knapsack import KnapsackDag
from repro.util.rng import seeded_rng
from repro.util.validation import require

__all__ = ["KnapsackApp", "make_knapsack_instance", "solve_knapsack"]


def make_knapsack_instance(
    n_items: int,
    capacity: int,
    seed: int = 0,
    max_weight: Optional[int] = None,
    max_value: int = 100,
) -> Tuple[List[int], List[int]]:
    """A seeded random instance: ``(weights, values)``."""
    require(n_items >= 1, "need at least one item")
    if max_weight is None:
        max_weight = max(1, capacity // 3)
    rng = seeded_rng(seed, "knapsack")
    weights = [int(w) for w in rng.integers(1, max_weight + 1, size=n_items)]
    values = [int(v) for v in rng.integers(1, max_value + 1, size=n_items)]
    return weights, values


class KnapsackApp(DPX10App[int]):
    """Maximum total value within the weight budget."""

    value_dtype = np.int64

    def __init__(
        self, weights: Sequence[int], values: Sequence[int], capacity: int
    ) -> None:
        require(len(weights) == len(values), "weights/values length mismatch")
        self.weights = list(weights)
        self.values = list(values)
        self.capacity = capacity
        self.best_value: Optional[int] = None
        self.chosen_items: Optional[List[int]] = None

    def compute(self, i: int, j: int, vertices: Sequence[Vertex[int]]) -> int:
        if i == 0:
            return 0
        dep = dependency_map(vertices)
        w, v = self.weights[i - 1], self.values[i - 1]
        skip = dep[(i - 1, j)]
        if w > j:
            return skip
        return max(skip, dep[(i - 1, j - w)] + v)

    def app_finished(self, dag: Dag[int]) -> None:
        n, cap = len(self.weights), self.capacity
        self.best_value = int(dag.get_vertex(n, cap).get_result())
        # backtrack the chosen item indices (0-based)
        chosen: List[int] = []
        j = cap
        for i in range(n, 0, -1):
            here = dag.get_vertex(i, j).get_result()
            if here != dag.get_vertex(i - 1, j).get_result():
                chosen.append(i - 1)
                j -= self.weights[i - 1]
        self.chosen_items = sorted(chosen)


def solve_knapsack(
    weights: Sequence[int],
    values: Sequence[int],
    capacity: int,
    config: Optional[DPX10Config] = None,
    fault_plans: Sequence[FaultPlan] = (),
) -> Tuple[KnapsackApp, RunReport]:
    """Run 0/1 Knapsack under DPX10 with its custom DAG pattern."""
    app = KnapsackApp(weights, values, capacity)
    dag = KnapsackDag(weights, capacity)
    report = DPX10Runtime(app, dag, config=config, fault_plans=fault_plans).run()
    return app, report
