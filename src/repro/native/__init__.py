"""Hand-written baselines bypassing the DPX10 framework.

Figure 12 compares DPX10's SWLAG against "the SWLAG algorithm implemented
with native X10": same computation, no DAG objects, no pattern dispatch,
no per-vertex scheduling, no cache — the cost of the framework's
convenience. :mod:`repro.native.swlag_native` is that baseline for this
reproduction: a direct array sweep used both for measured small-scale
overhead ratios and (through ``CostModel.native()``) for the simulated
paper-scale ratio.
"""

from repro.native.swlag_native import swlag_native, swlag_native_score

__all__ = ["swlag_native", "swlag_native_score"]
