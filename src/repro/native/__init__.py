"""Hand-written baselines bypassing the DPX10 framework.

Figure 12 compares DPX10's SWLAG against "the SWLAG algorithm implemented
with native X10": same computation, no DAG objects, no pattern dispatch,
no per-vertex scheduling, no cache — the cost of the framework's
convenience. :mod:`repro.native.swlag_native` is that baseline for this
reproduction: a direct array sweep used both for measured small-scale
overhead ratios and (through ``CostModel.native()``) for the simulated
paper-scale ratio.

:mod:`repro.native.dp_native` adds fully-vectorized NumPy antidiagonal
sweeps for SW/LCS/edit distance — the hand-written bound the generated
tile kernels (``autokernel=True``) are perf-gated against.
"""

from repro.native.dp_native import (
    edit_distance_native,
    lcs_native,
    msa3_native,
    mtp_native,
    sw_native,
)
from repro.native.swlag_native import swlag_native, swlag_native_score

__all__ = [
    "edit_distance_native",
    "lcs_native",
    "msa3_native",
    "mtp_native",
    "sw_native",
    "swlag_native",
    "swlag_native_score",
]
