"""Hand-vectorized NumPy baselines for the autokernel perf gate.

Unlike :mod:`repro.native.swlag_native` (deliberately cell-at-a-time, to
isolate *framework* overhead the way Figure 12 does), these sweeps are
what a performance-minded NumPy user hand-writes: one vectorized gather
per antidiagonal over the whole matrix. They bound what the generated
tile kernels (``DPX10Config(autokernel=True)``, see docs/ANALYSIS.md)
can hope to achieve — the framework still pays tile scheduling, halo
assembly and window scatter on top — and ``benchmarks/bench_engines.py
--native-check`` gates the autokernel engine at ~2x of them.

Each function mirrors its app's ``compute()`` bit-for-bit over the same
``(len(x)+1) x (len(y)+1)`` matrix (boundary row/column included), so
the gate can also assert value equality against ``dag.to_array()``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sw_native",
    "lcs_native",
    "edit_distance_native",
    "mtp_native",
    "msa3_native",
]

_NEG = np.int64(-(10**15))


def _codes(s: str) -> np.ndarray:
    return np.fromiter(map(ord, s), dtype=np.int64, count=len(s))


def sw_native(
    x: str,
    y: str,
    match: int = 2,
    mismatch: int = -1,
    gap: int = -1,
) -> np.ndarray:
    """Smith-Waterman H matrix (linear gap), one sweep per antidiagonal."""
    m, n = len(x), len(y)
    c1, c2 = _codes(x), _codes(y)
    h = np.zeros((m + 1, n + 1), dtype=np.int64)
    for d in range(2, m + n + 1):
        i = np.arange(max(1, d - n), min(m, d - 1) + 1, dtype=np.int64)
        if i.size == 0:
            continue
        j = d - i
        s = np.where(c1[i - 1] == c2[j - 1], match, mismatch)
        best = np.maximum(
            h[i - 1, j - 1] + s,
            np.maximum(h[i - 1, j] + gap, h[i, j - 1] + gap),
        )
        h[i, j] = np.maximum(0, best)
    return h


def lcs_native(x: str, y: str) -> np.ndarray:
    """Longest-common-subsequence length matrix, antidiagonal sweeps."""
    m, n = len(x), len(y)
    c1, c2 = _codes(x), _codes(y)
    h = np.zeros((m + 1, n + 1), dtype=np.int64)
    for d in range(2, m + n + 1):
        i = np.arange(max(1, d - n), min(m, d - 1) + 1, dtype=np.int64)
        if i.size == 0:
            continue
        j = d - i
        h[i, j] = np.where(
            c1[i - 1] == c2[j - 1],
            h[i - 1, j - 1] + 1,
            np.maximum(h[i - 1, j], h[i, j - 1]),
        )
    return h


def edit_distance_native(x: str, y: str) -> np.ndarray:
    """Levenshtein distance matrix, antidiagonal sweeps."""
    m, n = len(x), len(y)
    c1, c2 = _codes(x), _codes(y)
    h = np.zeros((m + 1, n + 1), dtype=np.int64)
    h[0, :] = np.arange(n + 1)
    h[:, 0] = np.arange(m + 1)
    for d in range(2, m + n + 1):
        i = np.arange(max(1, d - n), min(m, d - 1) + 1, dtype=np.int64)
        if i.size == 0:
            continue
        j = d - i
        cost = np.where(c1[i - 1] == c2[j - 1], 0, 1)
        h[i, j] = np.minimum(
            h[i - 1, j - 1] + cost,
            np.minimum(h[i - 1, j], h[i, j - 1]) + 1,
        )
    return h


def mtp_native(w_down: np.ndarray, w_right: np.ndarray) -> np.ndarray:
    """Manhattan Tourist distance matrix, one prefix-max scan per row.

    The ROW_SCAN_PREFIX closed form: within row ``i``,
    ``v_j = max(b_j, v_{j-1} + a_j)`` where ``b`` is the
    already-computed down-step candidate and ``a_j`` the rightward
    street weight, solved as ``max.accumulate(b - S) + S`` with
    ``S`` the inclusive prefix sum of ``a``.
    """
    m, n = w_right.shape[0], w_down.shape[1]
    t = np.zeros((m, n), dtype=np.int64)
    t[0] = np.concatenate([[np.int64(0)], np.cumsum(w_right[0])])
    for i in range(1, m):
        b = t[i - 1] + w_down[i - 1]
        s = np.concatenate([[np.int64(0)], np.cumsum(w_right[i])])
        t[i] = np.maximum.accumulate(b - s) + s
    return t


def msa3_native(
    x: str,
    y: str,
    z: str,
    match: int = 1,
    mismatch: int = -1,
    gap: int = -2,
) -> np.ndarray:
    """Three-way alignment score tensor, one 2D wavefront per x-slab.

    Slab ``i`` depends only on slab ``i-1`` (fully computed) plus the
    in-slab reads ``(0,-1,0)``, ``(0,0,-1)``, ``(0,-1,-1)``, so each
    slab is an NW-style antidiagonal sweep over ``(j, k)`` with four
    extra vectorized candidates gathered from the previous slab.
    """
    m, n, p = len(x), len(y), len(z)
    cx, cy, cz = _codes(x), _codes(y), _codes(z)
    # pairwise substitution planes, 1-padded so plane[i, j] scores the
    # step consuming x[i-1]/y[j-1] and index 0 never wraps
    sxy = np.zeros((m + 1, n + 1), dtype=np.int64)
    sxy[1:, 1:] = np.where(cx[:, None] == cy[None, :], match, mismatch)
    sxz = np.zeros((m + 1, p + 1), dtype=np.int64)
    sxz[1:, 1:] = np.where(cx[:, None] == cz[None, :], match, mismatch)
    syz = np.zeros((n + 1, p + 1), dtype=np.int64)
    syz[1:, 1:] = np.where(cy[:, None] == cz[None, :], match, mismatch)
    g2 = 2 * gap
    h = np.full((m + 1, n + 1, p + 1), _NEG, dtype=np.int64)
    h[0, 0, 0] = 0

    def take(plane, jj, kk, valid):
        v = plane[np.clip(jj, 0, None), np.clip(kk, 0, None)]
        return np.where(valid, v, _NEG)

    for i in range(m + 1):
        cur = h[i]
        prev = h[i - 1] if i > 0 else None
        for d in range(n + p + 1):
            if i == 0 and d == 0:
                continue
            j = np.arange(max(0, d - p), min(n, d) + 1, dtype=np.int64)
            k = d - j
            jv, kv = j > 0, k > 0
            cand = np.full(j.shape, _NEG, dtype=np.int64)
            np.maximum(cand, take(cur, j - 1, k, jv) + g2, out=cand)
            np.maximum(cand, take(cur, j, k - 1, kv) + g2, out=cand)
            np.maximum(
                cand,
                take(cur, j - 1, k - 1, jv & kv) + syz[j, k] + g2,
                out=cand,
            )
            if prev is not None:
                np.maximum(cand, prev[j, k] + g2, out=cand)
                np.maximum(
                    cand, take(prev, j - 1, k, jv) + sxy[i, j] + g2, out=cand
                )
                np.maximum(
                    cand, take(prev, j, k - 1, kv) + sxz[i, k] + g2, out=cand
                )
                np.maximum(
                    cand,
                    take(prev, j - 1, k - 1, jv & kv)
                    + sxy[i, j]
                    + sxz[i, k]
                    + syz[j, k],
                    out=cand,
                )
            cur[j, k] = cand
    return h
