"""Hand-vectorized NumPy baselines for the autokernel perf gate.

Unlike :mod:`repro.native.swlag_native` (deliberately cell-at-a-time, to
isolate *framework* overhead the way Figure 12 does), these sweeps are
what a performance-minded NumPy user hand-writes: one vectorized gather
per antidiagonal over the whole matrix. They bound what the generated
tile kernels (``DPX10Config(autokernel=True)``, see docs/ANALYSIS.md)
can hope to achieve — the framework still pays tile scheduling, halo
assembly and window scatter on top — and ``benchmarks/bench_engines.py
--native-check`` gates the autokernel engine at ~2x of them.

Each function mirrors its app's ``compute()`` bit-for-bit over the same
``(len(x)+1) x (len(y)+1)`` matrix (boundary row/column included), so
the gate can also assert value equality against ``dag.to_array()``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sw_native", "lcs_native", "edit_distance_native"]


def _codes(s: str) -> np.ndarray:
    return np.fromiter(map(ord, s), dtype=np.int64, count=len(s))


def sw_native(
    x: str,
    y: str,
    match: int = 2,
    mismatch: int = -1,
    gap: int = -1,
) -> np.ndarray:
    """Smith-Waterman H matrix (linear gap), one sweep per antidiagonal."""
    m, n = len(x), len(y)
    c1, c2 = _codes(x), _codes(y)
    h = np.zeros((m + 1, n + 1), dtype=np.int64)
    for d in range(2, m + n + 1):
        i = np.arange(max(1, d - n), min(m, d - 1) + 1, dtype=np.int64)
        if i.size == 0:
            continue
        j = d - i
        s = np.where(c1[i - 1] == c2[j - 1], match, mismatch)
        best = np.maximum(
            h[i - 1, j - 1] + s,
            np.maximum(h[i - 1, j] + gap, h[i, j - 1] + gap),
        )
        h[i, j] = np.maximum(0, best)
    return h


def lcs_native(x: str, y: str) -> np.ndarray:
    """Longest-common-subsequence length matrix, antidiagonal sweeps."""
    m, n = len(x), len(y)
    c1, c2 = _codes(x), _codes(y)
    h = np.zeros((m + 1, n + 1), dtype=np.int64)
    for d in range(2, m + n + 1):
        i = np.arange(max(1, d - n), min(m, d - 1) + 1, dtype=np.int64)
        if i.size == 0:
            continue
        j = d - i
        h[i, j] = np.where(
            c1[i - 1] == c2[j - 1],
            h[i - 1, j - 1] + 1,
            np.maximum(h[i - 1, j], h[i, j - 1]),
        )
    return h


def edit_distance_native(x: str, y: str) -> np.ndarray:
    """Levenshtein distance matrix, antidiagonal sweeps."""
    m, n = len(x), len(y)
    c1, c2 = _codes(x), _codes(y)
    h = np.zeros((m + 1, n + 1), dtype=np.int64)
    h[0, :] = np.arange(n + 1)
    h[:, 0] = np.arange(m + 1)
    for d in range(2, m + n + 1):
        i = np.arange(max(1, d - n), min(m, d - 1) + 1, dtype=np.int64)
        if i.size == 0:
            continue
        j = d - i
        cost = np.where(c1[i - 1] == c2[j - 1], 0, 1)
        h[i, j] = np.minimum(
            h[i - 1, j - 1] + cost,
            np.minimum(h[i - 1, j], h[i, j - 1]) + 1,
        )
    return h
