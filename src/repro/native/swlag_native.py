"""Hand-written SWLAG: the no-framework baseline of Figure 12.

A direct wavefront over plain arrays, cell granularity identical to the
framework's ``compute()`` (so the comparison isolates framework
bookkeeping: Vertex wrappers, dependency lists, ready-list scheduling,
cache probes), but with none of that machinery — exactly what a
programmer hand-writing the algorithm would do. As in the paper's setup,
"the cache list was not used and other configurations were set to the
same".
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.apps.serial import NEG_INF

__all__ = ["swlag_native", "swlag_native_score"]


def swlag_native(
    str1: str,
    str2: str,
    match: int = 2,
    mismatch: int = -1,
    gap_open: int = -2,
    gap_extend: int = -1,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute the SWLAG ``(H, E, F)`` matrices with a plain cell loop.

    Deliberately cell-at-a-time (not numpy-vectorized): the framework also
    pays Python per cell, so this isolates the *framework* overhead the
    way Figure 12 does, rather than comparing interpretation strategies.
    """
    m, n = len(str1), len(str2)
    h = np.zeros((m + 1, n + 1), dtype=np.int64)
    e = np.full((m + 1, n + 1), NEG_INF, dtype=np.int64)
    f = np.full((m + 1, n + 1), NEG_INF, dtype=np.int64)
    # local names: the hand-written version a performance-minded user writes
    hl = h
    el = e
    fl = f
    for i in range(1, m + 1):
        ci = str1[i - 1]
        for j in range(1, n + 1):
            s = match if ci == str2[j - 1] else mismatch
            ev = hl[i, j - 1] + gap_open
            ee = el[i, j - 1] + gap_extend
            if ee > ev:
                ev = ee
            fv = hl[i - 1, j] + gap_open
            fe = fl[i - 1, j] + gap_extend
            if fe > fv:
                fv = fe
            hv = hl[i - 1, j - 1] + s
            if ev > hv:
                hv = ev
            if fv > hv:
                hv = fv
            if hv < 0:
                hv = 0
            el[i, j] = ev
            fl[i, j] = fv
            hl[i, j] = hv
    return h, e, f


def swlag_native_score(str1: str, str2: str, **scoring) -> int:
    """Best local alignment score from the hand-written baseline."""
    h, _, _ = swlag_native(str1, str2, **scoring)
    return int(h.max())
