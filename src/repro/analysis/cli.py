"""The ``python -m repro lint`` command.

Runs the static passes — symbolic/enumerated pattern verification plus
the ``compute()`` AST lint — over built-in fixtures or user code and
prints findings as ``SEVERITY CODE [subject] message`` lines. The exit
code is non-zero when any ERROR-severity finding (or, under ``--strict``,
any WARNING) is reported, so the command slots directly into CI.
"""

from __future__ import annotations

import importlib
from typing import List, Tuple

from repro.analysis.findings import AnalysisReport, Severity
from repro.analysis.lint import lint_app
from repro.analysis.symbolic import verify_pattern
from repro.core.dag import Dag
from repro.errors import AnalysisError

__all__ = ["add_lint_parser", "cmd_lint"]


def add_lint_parser(sub) -> None:
    p = sub.add_parser(
        "lint",
        help="statically verify DP patterns and lint compute() methods",
        description=__doc__,
    )
    p.add_argument(
        "--pattern",
        action="append",
        default=[],
        metavar="NAME",
        help="verify a built-in pattern (repeatable)",
    )
    p.add_argument(
        "--app",
        action="append",
        default=[],
        metavar="NAME",
        help="verify + lint a built-in application (repeatable)",
    )
    p.add_argument(
        "--module",
        action="append",
        default=[],
        metavar="MOD:ATTR",
        help=(
            "verify a user target: ATTR in module MOD may be a Dag "
            "instance, a zero-argument factory returning a Dag or an "
            "(app, dag) pair, or an app instance paired with a dag via "
            "a factory (repeatable)"
        ),
    )
    p.add_argument(
        "--all",
        action="store_true",
        help="lint every built-in pattern and application (the default "
        "when no target is given)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="treat WARNING findings as errors for the exit code",
    )
    p.add_argument(
        "--no-metrics",
        action="store_true",
        help="skip the static parallelism metrics",
    )
    p.set_defaults(fn=cmd_lint)


def _resolve_module_target(spec: str):
    if ":" not in spec:
        raise AnalysisError(
            f"--module takes MOD:ATTR, got {spec!r} (missing ':')"
        )
    mod_name, attr = spec.split(":", 1)
    try:
        mod = importlib.import_module(mod_name)
    except ImportError as exc:
        raise AnalysisError(f"cannot import module {mod_name!r}: {exc}")
    try:
        obj = getattr(mod, attr)
    except AttributeError:
        raise AnalysisError(f"module {mod_name!r} has no attribute {attr!r}")
    if callable(obj) and not isinstance(obj, Dag):
        obj = obj()
    return obj


def _gather(args) -> List[Tuple[str, object, object]]:
    """Resolve CLI targets to ``(subject, dag_or_None, app_or_None)``."""
    from repro.analysis import registry

    targets: List[Tuple[str, object, object]] = []
    patterns = list(args.pattern)
    apps = list(args.app)
    if args.all or not (patterns or apps or args.module):
        patterns = list(registry.pattern_names())
        apps = list(registry.app_names())
    for name in patterns:
        targets.append((f"pattern:{name}", registry.pattern_fixture(name), None))
    for name in apps:
        app, dag = registry.app_fixture(name)
        targets.append((f"app:{name}", dag, app))
    for spec in args.module:
        obj = _resolve_module_target(spec)
        if isinstance(obj, Dag):
            targets.append((spec, obj, None))
        elif (
            isinstance(obj, tuple)
            and len(obj) == 2
            and isinstance(obj[1], Dag)
        ):
            targets.append((spec, obj[1], obj[0]))
        else:
            raise AnalysisError(
                f"--module target {spec!r} resolved to {type(obj).__name__}; "
                "expected a Dag, an (app, dag) pair, or a factory for one"
            )
    return targets


def _print_report(report: AnalysisReport, verbose_metrics: bool) -> None:
    for f in report.findings:
        print(str(f))
    if verbose_metrics and report.metrics:
        depth = report.metrics.get("wavefront_depth")
        width = report.metrics.get("max_antichain_width")
        vec = report.metrics.get("wavefront_vector")
        bits = [f"method={report.method}"]
        if vec is not None:
            bits.append(f"wavefront_vector={vec}")
        if depth is not None:
            bits.append(f"depth={depth}")
        if width is not None:
            bits.append(f"width={width}")
        print(f"  {report.subject}: " + " ".join(bits))


def cmd_lint(args) -> int:
    try:
        targets = _gather(args)
    except AnalysisError as exc:
        print(f"ERROR DP106 [lint] {exc}")
        return 2

    fail_at = Severity.WARNING if args.strict else Severity.ERROR
    n_findings = 0
    failed = False
    for subject, dag, app in targets:
        report = verify_pattern(dag, metrics=not args.no_metrics, subject=subject)
        if app is not None:
            report.extend(lint_app(app, dag=dag, subject=subject))
        _print_report(report, verbose_metrics=not args.no_metrics)
        n_findings += len(report.findings)
        worst = report.max_severity
        if worst is not None and worst >= fail_at:
            failed = True

    verdict = "FAIL" if failed else "ok"
    print(
        f"lint: {len(targets)} target(s), {n_findings} finding(s) -> {verdict}"
    )
    return 1 if failed else 0
