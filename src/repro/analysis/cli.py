"""The ``python -m repro lint`` and ``python -m repro analyze`` commands.

``lint`` runs the static passes — symbolic/enumerated pattern
verification plus the ``compute()`` AST lint — over built-in fixtures or
user code and prints findings as ``SEVERITY CODE [subject] message``
lines. The exit code is non-zero when any ERROR-severity finding (or,
under ``--strict``, any WARNING) is reported, so the command slots
directly into CI.

``analyze`` runs the kernel-readiness analyzer (see
:mod:`repro.analysis.classify` and docs/ANALYSIS.md): it lifts each
``compute()`` to the typed IR, infers effects/dtypes/footprints and
reports the assigned vectorization class with any DP4xx demotion
findings. ``--check-manifest`` compares the classes against a committed
expectations file (``ANALYZE_classes.json``) so CI fails when a code
change silently demotes an app to OPAQUE.
"""

from __future__ import annotations

import importlib
import json
from typing import List, Tuple

from repro.analysis.findings import AnalysisReport, Severity
from repro.analysis.lint import lint_app
from repro.analysis.symbolic import verify_pattern
from repro.core.dag import Dag
from repro.errors import AnalysisError

__all__ = ["add_lint_parser", "cmd_lint", "add_analyze_parser", "cmd_analyze"]


def add_lint_parser(sub) -> None:
    p = sub.add_parser(
        "lint",
        help="statically verify DP patterns and lint compute() methods",
        description=__doc__,
    )
    p.add_argument(
        "--pattern",
        action="append",
        default=[],
        metavar="NAME",
        help="verify a built-in pattern (repeatable)",
    )
    p.add_argument(
        "--app",
        action="append",
        default=[],
        metavar="NAME",
        help="verify + lint a built-in application (repeatable)",
    )
    p.add_argument(
        "--module",
        action="append",
        default=[],
        metavar="MOD:ATTR",
        help=(
            "verify a user target: ATTR in module MOD may be a Dag "
            "instance, a zero-argument factory returning a Dag or an "
            "(app, dag) pair, or an app instance paired with a dag via "
            "a factory (repeatable)"
        ),
    )
    p.add_argument(
        "--all",
        action="store_true",
        help="lint every built-in pattern and application (the default "
        "when no target is given)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="treat WARNING findings as errors for the exit code",
    )
    p.add_argument(
        "--no-metrics",
        action="store_true",
        help="skip the static parallelism metrics",
    )
    p.set_defaults(fn=cmd_lint)


def _resolve_module_target(spec: str):
    if ":" not in spec:
        raise AnalysisError(
            f"--module takes MOD:ATTR, got {spec!r} (missing ':')"
        )
    mod_name, attr = spec.split(":", 1)
    try:
        mod = importlib.import_module(mod_name)
    except ImportError as exc:
        raise AnalysisError(f"cannot import module {mod_name!r}: {exc}")
    try:
        obj = getattr(mod, attr)
    except AttributeError:
        raise AnalysisError(f"module {mod_name!r} has no attribute {attr!r}")
    if callable(obj) and not isinstance(obj, Dag):
        obj = obj()
    return obj


def _gather(args) -> List[Tuple[str, object, object]]:
    """Resolve CLI targets to ``(subject, dag_or_None, app_or_None)``."""
    from repro.analysis import registry

    targets: List[Tuple[str, object, object]] = []
    patterns = list(args.pattern)
    apps = list(args.app)
    if args.all or not (patterns or apps or args.module):
        patterns = list(registry.pattern_names())
        apps = list(registry.app_names())
    for name in patterns:
        targets.append((f"pattern:{name}", registry.pattern_fixture(name), None))
    for name in apps:
        app, dag = registry.app_fixture(name)
        targets.append((f"app:{name}", dag, app))
    for spec in args.module:
        obj = _resolve_module_target(spec)
        if isinstance(obj, Dag):
            targets.append((spec, obj, None))
        elif (
            isinstance(obj, tuple)
            and len(obj) == 2
            and isinstance(obj[1], Dag)
        ):
            targets.append((spec, obj[1], obj[0]))
        else:
            raise AnalysisError(
                f"--module target {spec!r} resolved to {type(obj).__name__}; "
                "expected a Dag, an (app, dag) pair, or a factory for one"
            )
    return targets


def _print_report(report: AnalysisReport, verbose_metrics: bool) -> None:
    for f in report.findings:
        print(str(f))
    if verbose_metrics and report.metrics:
        depth = report.metrics.get("wavefront_depth")
        width = report.metrics.get("max_antichain_width")
        vec = report.metrics.get("wavefront_vector")
        bits = [f"method={report.method}"]
        if vec is not None:
            bits.append(f"wavefront_vector={vec}")
        if depth is not None:
            bits.append(f"depth={depth}")
        if width is not None:
            bits.append(f"width={width}")
        print(f"  {report.subject}: " + " ".join(bits))


def cmd_lint(args) -> int:
    try:
        targets = _gather(args)
    except AnalysisError as exc:
        print(f"ERROR DP106 [lint] {exc}")
        return 2

    fail_at = Severity.WARNING if args.strict else Severity.ERROR
    n_findings = 0
    failed = False
    for subject, dag, app in targets:
        report = verify_pattern(dag, metrics=not args.no_metrics, subject=subject)
        if app is not None:
            report.extend(lint_app(app, dag=dag, subject=subject))
        _print_report(report, verbose_metrics=not args.no_metrics)
        n_findings += len(report.findings)
        worst = report.max_severity
        if worst is not None and worst >= fail_at:
            failed = True

    verdict = "FAIL" if failed else "ok"
    print(
        f"lint: {len(targets)} target(s), {n_findings} finding(s) -> {verdict}"
    )
    return 1 if failed else 0


# -- the analyze command --------------------------------------------------------


def add_analyze_parser(sub) -> None:
    p = sub.add_parser(
        "analyze",
        help="kernel-readiness analysis: IR, effects, footprint, class",
        description=__doc__,
    )
    p.add_argument(
        "--app",
        action="append",
        default=[],
        metavar="NAME",
        help="analyze a built-in application (repeatable)",
    )
    p.add_argument(
        "--module",
        action="append",
        default=[],
        metavar="MOD:ATTR",
        help="analyze a user (app, dag) pair or zero-arg factory for one",
    )
    p.add_argument(
        "--all",
        action="store_true",
        help="analyze every built-in application (the default when no "
        "target is given)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document instead of text",
    )
    p.add_argument(
        "--check-manifest",
        metavar="PATH",
        default=None,
        help="compare classes/demotion codes against a committed "
        "expectations manifest (ANALYZE_classes.json); exit 1 on drift",
    )
    p.add_argument(
        "--dump-kernel",
        action="store_true",
        help="print each non-OPAQUE target's generated compute_tile source",
    )
    p.add_argument(
        "--ir",
        action="store_true",
        help="print each liftable target's normalized IR",
    )
    p.set_defaults(fn=cmd_analyze)


def _gather_apps(args) -> List[Tuple[str, object, object]]:
    """Resolve analyze targets to ``(name, app, dag)``."""
    from repro.analysis import registry

    targets: List[Tuple[str, object, object]] = []
    apps = list(args.app)
    if args.all or not (apps or args.module):
        apps = list(registry.app_names())
    for name in apps:
        app, dag = registry.app_fixture(name)
        targets.append((name, app, dag))
    for spec in args.module:
        obj = _resolve_module_target(spec)
        if (
            isinstance(obj, tuple)
            and len(obj) == 2
            and isinstance(obj[1], Dag)
        ):
            targets.append((spec, obj[0], obj[1]))
        else:
            raise AnalysisError(
                f"--module target {spec!r} resolved to {type(obj).__name__}; "
                "analyze needs an (app, dag) pair or a factory for one"
            )
    return targets


def _analyze_one(name: str, app, dag) -> dict:
    """One target's analysis record (the JSON shape; text renders it)."""
    from repro.analysis.codegen import build_autokernel

    kernel, cls = build_autokernel(app, dag, subject=f"app:{name}")
    rec = {
        "class": cls.klass,
        "rank": list(cls.rank) if cls.rank is not None else None,
        "codes": sorted({f.code for f in cls.report.findings}),
        "findings": [
            {
                "code": f.code,
                "severity": f.severity.name,
                "message": f.message,
                "location": f.location,
            }
            for f in cls.report.findings
        ],
        "pads": list(kernel.pads) if kernel is not None else None,
        "error": any(
            f.severity >= Severity.ERROR for f in cls.report.findings
        ),
    }
    if kernel is not None:
        rec["kernel_source"] = kernel.source
    if cls.ir is not None:
        rec["ir"] = cls.ir.pretty()
    return rec


def _check_manifest(path: str, records: dict) -> List[str]:
    """Differences between the committed expectations and this run."""
    with open(path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    expected = manifest.get("apps", manifest)
    drift: List[str] = []
    for name, rec in sorted(records.items()):
        exp = expected.get(name)
        if exp is None:
            drift.append(f"{name}: not in manifest (new app? update it)")
            continue
        if rec["class"] != exp.get("class"):
            drift.append(
                f"{name}: class {rec['class']} != expected {exp.get('class')}"
            )
        exp_codes = sorted(exp.get("codes", []))
        if rec["codes"] != exp_codes:
            drift.append(
                f"{name}: finding codes {rec['codes']} != expected {exp_codes}"
            )
    for name in sorted(set(expected) - set(records)):
        drift.append(f"{name}: in manifest but not analyzed")
    return drift


def cmd_analyze(args) -> int:
    try:
        targets = _gather_apps(args)
    except AnalysisError as exc:
        print(f"ERROR DP106 [analyze] {exc}")
        return 2

    records = {}
    for name, app, dag in targets:
        records[name] = _analyze_one(name, app, dag)

    failed = any(rec["error"] for rec in records.values())
    drift: List[str] = []
    if args.check_manifest:
        try:
            drift = _check_manifest(args.check_manifest, records)
        except (OSError, ValueError) as exc:
            print(f"ERROR DP106 [analyze] cannot read manifest: {exc}")
            return 2

    if args.json:
        doc = {
            "apps": {
                n: {k: v for k, v in r.items() if k != "kernel_source" or args.dump_kernel}
                for n, r in records.items()
            },
            "drift": drift,
            "ok": not failed and not drift,
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        for name, rec in sorted(records.items()):
            bits = [f"{name:20s} {rec['class']:20s}"]
            if rec["rank"] is not None:
                bits.append(f"rank={tuple(rec['rank'])}")
            if rec["pads"] is not None:
                bits.append(f"pads={tuple(rec['pads'])}")
            print(" ".join(bits))
            for f in rec["findings"]:
                loc = f" ({f['location']})" if f["location"] else ""
                print(f"    {f['severity']:7s} {f['code']} {f['message']}{loc}")
            if args.ir and "ir" in rec:
                print("  -- IR " + "-" * 58)
                for line in rec["ir"].splitlines():
                    print(f"  {line}")
            if args.dump_kernel and "kernel_source" in rec:
                print("  -- generated kernel " + "-" * 44)
                for line in rec["kernel_source"].splitlines():
                    print(f"  {line}")
        for d in drift:
            print(f"DRIFT: {d}")
        n_opaque = sum(1 for r in records.values() if r["class"] == "OPAQUE")
        verdict = "FAIL" if (failed or drift) else "ok"
        print(
            f"analyze: {len(records)} app(s), {n_opaque} OPAQUE, "
            f"{len(drift)} drift(s) -> {verdict}"
        )
    return 1 if (failed or drift) else 0
