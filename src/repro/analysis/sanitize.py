"""Runtime dependency-race sanitizer (``DPX10Config(sanitize=True)``).

The dynamic complement of the AST lint: whatever static analysis cannot
resolve (data-dependent indices, smuggled store references, result-view
reads from inside ``compute()``), the sanitizer catches at the moment it
happens. While a sanitized ``compute(i, j, ...)`` runs, a thread-local
*guard* records the cell and its declared dependency set; every
:class:`~repro.core.vertex_store.VertexStore` or remote-cache read that
executes under the guard is cross-checked against that set, and an
undeclared access raises :class:`~repro.errors.DependencyRaceError`
naming the read cell, the offending offset, the owning place and the
executing place (finding code DP301).

The hook is two loads and a truth test when no guard is active (module
global ``_active_guards``), so an unsanitized run pays nothing
measurable; sanitized runs add one frozenset build plus one membership
probe per read.

This module deliberately imports nothing from ``repro.core`` — the store
and cache import it, not the other way around.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterable, Optional, Tuple

from repro.errors import DependencyRaceError

__all__ = ["compute_guard", "check_read", "guard_active"]

Coord = Tuple[int, int]

#: number of live guards across all threads; the fast-path filter the
#: store/cache hooks read before doing any real work
_active_guards = 0
_count_lock = threading.Lock()
_tls = threading.local()


class _Guard:
    __slots__ = ("cell", "declared", "exec_place")

    def __init__(self, cell: Coord, declared: frozenset, exec_place: int) -> None:
        self.cell = cell
        self.declared = declared
        self.exec_place = exec_place


def guard_active() -> bool:
    """Whether any sanitizer guard is live (cheap global check)."""
    return _active_guards > 0


@contextmanager
def compute_guard(cell: Coord, declared: Iterable[Coord], exec_place: int):
    """Declare that ``compute(*cell)`` runs on this thread until exit."""
    global _active_guards
    guard = _Guard(cell, frozenset(declared), exec_place)
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    stack.append(guard)
    with _count_lock:
        _active_guards += 1
    try:
        yield guard
    finally:
        stack.pop()
        with _count_lock:
            _active_guards -= 1


def check_read(
    i: int, j: int, owner_place: Optional[int] = None, source: str = "vertex store"
) -> None:
    """Validate a read of cell ``(i, j)`` against the active guard, if any.

    Called by :meth:`VertexStore.get_result` and the remote cache when
    :func:`guard_active` is true. Reads outside any ``compute()`` (the
    framework's own dependency gathering, ``app_finished`` backtracking)
    carry no thread-local guard and pass through untouched.
    """
    stack = getattr(_tls, "stack", None)
    if not stack:
        return
    guard: _Guard = stack[-1]
    if (i, j) in guard.declared:
        return
    ci, cj = guard.cell
    owner = f"place {owner_place}" if owner_place is not None else "unknown place"
    raise DependencyRaceError(
        code="DP301",
        cell=(i, j),
        reader=guard.cell,
        offset=(i - ci, j - cj),
        owner_place=owner_place,
        exec_place=guard.exec_place,
        message=(
            f"[DP301] undeclared dependency read: compute({ci}, {cj}) "
            f"running at place {guard.exec_place} read cell ({i}, {j}) "
            f"(offset ({i - ci:+d}, {j - cj:+d})) from the {source} of "
            f"{owner}, but get_dependency({ci}, {cj}) declares only "
            f"{sorted(guard.declared)}. Undeclared reads race with the "
            "scheduler: the cell may be unfinished or stale on other "
            "distributions. Declare the dependency in the DAG pattern."
        ),
    )


def race_on_unfinished(
    cell: Coord, dep: Coord, owner_place: int, exec_place: int
) -> DependencyRaceError:
    """Build the DP302 diagnostic: a *declared* dependency was gathered
    before it finished — the signature of an under-declared
    anti-dependency (the indegree never accounted for the edge)."""
    ci, cj = cell
    di, dj = dep
    return DependencyRaceError(
        code="DP302",
        cell=dep,
        reader=cell,
        offset=(di - ci, dj - cj),
        owner_place=owner_place,
        exec_place=exec_place,
        message=(
            f"[DP302] dependency race: compute({ci}, {cj}) at place "
            f"{exec_place} was scheduled before its declared dependency "
            f"({di}, {dj}) (offset ({di - ci:+d}, {dj - cj:+d}), homed at "
            f"place {owner_place}) finished. The pattern's "
            "get_anti_dependency under-declares this edge, so the "
            "indegree bookkeeping released the cell too early."
        ),
    )
