"""Static DP-program verification and runtime race sanitizing.

Three cooperating passes over a DPX10 program (see docs/ANALYSIS.md):

1. :mod:`repro.analysis.symbolic` — proves a stencil pattern acyclic from
   its offset set alone (ranking/wavefront vector), checks dep/anti-dep
   inverse consistency, and reports static parallelism metrics.
2. :mod:`repro.analysis.lint` — an AST pass over ``compute()`` that flags
   undeclared-cell reads, nondeterminism sources, and shared-state
   mutation.
3. :mod:`repro.analysis.sanitize` — the opt-in runtime dependency-race
   sanitizer behind ``DPX10Config(sanitize=True)``.

This package's import surface is deliberately light: ``repro.core``
modules import :mod:`repro.analysis.sanitize`, so nothing here may import
``repro.core``/``repro.patterns``/``repro.apps`` at module level. The CLI
entry point (:mod:`repro.analysis.cli`) and the fixture registry
(:mod:`repro.analysis.registry`) do, and therefore must be imported
explicitly, never from this ``__init__``.
"""

from __future__ import annotations

from repro.analysis.findings import (
    FINDING_CODES,
    AnalysisReport,
    Finding,
    Severity,
    make_finding,
)
from repro.analysis.lint import lint_app, lint_compute
from repro.analysis.sanitize import check_read, compute_guard, guard_active
from repro.analysis.symbolic import (
    enumerate_verify,
    find_ranking_vector,
    try_symbolic_validate,
    verify_offsets,
    verify_pattern,
    verify_stencil,
)

__all__ = [
    "FINDING_CODES",
    "AnalysisReport",
    "Finding",
    "Severity",
    "make_finding",
    "lint_app",
    "lint_compute",
    "check_read",
    "compute_guard",
    "guard_active",
    "enumerate_verify",
    "find_ranking_vector",
    "try_symbolic_validate",
    "verify_offsets",
    "verify_pattern",
    "verify_stencil",
]
