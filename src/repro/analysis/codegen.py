"""NumPy tile-kernel generation from the classified ``compute()`` IR.

:func:`build_autokernel` turns a non-OPAQUE classification into a
``compute_tile(r0, c0, window, oi, oj, h, w) -> bool`` function with the
same contract as hand-written kernels (:meth:`repro.core.api.DPX10App.
compute_tile`): the window covers the tile plus its stencil halo, the
halo is pre-filled, unwritten cells read as dtype zero, and cell
``(i, j)`` lives at ``window[oi + i - r0, oj + j - c0]``.

Emission strategy per class:

* ``ELEMENTWISE`` — one vectorized sweep per tile row (every dependency
  is in an earlier row).
* ``ANTIDIAG_WAVEFRONT`` — sweeps along the anti-diagonals ordered by
  the ranking vector; all lanes on a level are independent.
* ``ROW_SCAN_PREFIX`` — per row, the intra-row recurrence
  ``v[j] = max(base[j], v[j - s] + add)`` is solved in closed form with
  a strided ``np.maximum.accumulate`` over residue classes mod ``s``
  (within a residue class, ``v_k = max_{l<=k}(base_l + (k-l)*add)``,
  which is ``accumulate(base - k*add) + k*add``).

Lane-safety rules baked into every emission:

* all window / self-array gathers are ``np.clip``-ed — ``np.where``
  evaluates both branches, so masked lanes must still index in range;
* ``dep.get(..., default)`` emits an in-bounds-and-active mask and a
  ``np.where`` against the default (the window's zero fill is *not* the
  default — banded's is ``10**9``);
* lanes on inactive cells are filtered out before the store, so
  inactive cells keep the zero other cells' defaulted reads observe.

The generated source is kept on the returned :class:`AutoKernel` for
the CLI (``repro analyze --dump-kernel``) and the docs walkthrough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .classify import Classification, RowScanForm, classify_app
from .findings import AnalysisReport
from .infer import FootEntry, _expr_kind
from .ir import (
    AffineIndex,
    Bin,
    BoolE,
    Call,
    Cmp,
    Cond,
    Const,
    DepRead,
    Expr,
    Index,
    Neg,
    NotE,
    Present,
    Reduce,
    SelfElem,
    SelfElem2,
    SelfScalar,
)

__all__ = [
    "AutoKernel",
    "KernelBuildError",
    "KernelSpec",
    "build_autokernel",
    "kernel_from_spec",
]


class KernelBuildError(Exception):
    """The classified IR could not be turned into a kernel."""


@dataclass
class KernelSpec:
    """The picklable residue of a classification, enough to re-emit.

    The mp master classifies (and probes) once pre-fork, then ships
    this spec inside the tile metadata; workers call
    :func:`kernel_from_spec` to re-emit the kernel without re-running
    the AST pipeline or the numeric probes. Every field is built from
    frozen IR dataclasses, so the spec survives pickling — unlike the
    compiled kernel function itself.
    """

    subject: str
    klass: str
    rank: Optional[Tuple[int, int]] = None
    ir: Optional[object] = None
    entries: Tuple[FootEntry, ...] = ()
    row_scan: Optional[RowScanForm] = None
    case_kinds: dict = field(default_factory=dict)


@dataclass
class AutoKernel:
    """A generated tile kernel plus everything the runtime needs.

    ``mode`` is ``"window"`` for kernels honouring the
    ``compute_tile(r0, c0, window, oi, oj, h, w)`` contract and
    ``"cells"`` for tree-level kernels, whose ``fn.run_cells(rows,
    cols, halo_values)`` maps a tile's active cells straight to values
    (no dense window exists for object-valued apps). ``spec`` is the
    picklable classification residue mp workers rebuild from.
    """

    fn: object
    pads: Tuple[int, int, int, int]
    klass: str
    subject: str
    source: str
    mode: str = "window"
    spec: Optional[KernelSpec] = None

    def __call__(self, r0, c0, window, oi, oj, h, w) -> bool:
        return self.fn(r0, c0, window, oi, oj, h, w)


def _term_values(term: Expr, app) -> np.ndarray:
    if isinstance(term, SelfScalar):
        return np.asarray([getattr(app, term.attr)])
    if isinstance(term, (SelfElem, SelfElem2)):
        return np.asarray(getattr(app, term.attr)).ravel()
    raise KernelBuildError(f"unbounded index term {type(term).__name__}")


def _affine_bounds(aff: AffineIndex, app) -> Tuple[int, int]:
    lo = hi = aff.const
    for sign, term in aff.terms:
        vals = _term_values(term, app)
        if vals.size == 0:
            continue
        if not np.issubdtype(vals.dtype, np.integer):
            raise KernelBuildError("non-integer data term in a dependency index")
        vlo, vhi = int(vals.min()), int(vals.max())
        lo += min(sign * vlo, sign * vhi)
        hi += max(sign * vlo, sign * vhi)
    return lo, hi


def _pads_for(entries: Tuple[FootEntry, ...], app) -> Tuple[int, int, int, int]:
    rmin = rmax = cmin = cmax = 0
    for e in entries:
        lo, hi = _affine_bounds(e.row, app)
        rmin, rmax = min(rmin, lo), max(rmax, hi)
        lo, hi = _affine_bounds(e.col, app)
        cmin, cmax = min(cmin, lo), max(cmax, hi)
    return (max(0, -rmin), max(0, rmax), max(0, -cmin), max(0, cmax))


def _make_act(dag):
    """A vectorized activity predicate, or None when every cell is active."""
    from repro.core.dag import Dag

    if type(dag).is_active is Dag.is_active:
        # never overridden: every in-bounds cell is active, and the
        # kernel can drop per-level masking entirely (dense stencils
        # report an all-ones is_active_array, which would otherwise
        # cost an activity gather per wavefront level for nothing)
        return None
    probe = dag.is_active_array(np.asarray([0]), np.asarray([0]))
    if probe is not None:
        return lambda ri, rj: dag.is_active_array(
            np.asarray(ri), np.asarray(rj)
        )

    def act(ri, rj):
        ri, rj = np.broadcast_arrays(np.asarray(ri), np.asarray(rj))
        return np.fromiter(
            (dag.is_active(a, b) for a, b in zip(ri.ravel(), rj.ravel())),
            dtype=bool,
            count=ri.size,
        ).reshape(ri.shape)

    return act


class _Emitter:
    """Renders IR expressions as NumPy source over the lane vectors.

    Lane context: ``gi``/``gj`` are global row/col vectors for the lanes
    being computed, ``wi``/``wj`` the matching window indices. Dependency
    reads and presence tests are emitted as cached temporaries.
    """

    def __init__(self, app, dag, has_act: bool) -> None:
        self.app = app
        self.dag = dag
        self.has_act = has_act
        self.closures: Dict[str, object] = {"np": np}
        self.lines: List[str] = []
        self.indent = 2
        self._tmp = 0
        self._cache: Dict[Expr, str] = {}
        self._line_cache: Dict[str, str] = {}
        self._attr_arrays: Dict[Tuple[str, str], str] = {}
        self.H, self.W = dag.height, dag.width

    # -- plumbing ---------------------------------------------------------------------
    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def tmp(self) -> str:
        self._tmp += 1
        return f"_t{self._tmp}"

    def cached(self, rhs: str) -> str:
        """Hoist ``rhs`` into a temp once per level; later uses share it."""
        if rhs.isidentifier() or rhs == "True":
            return rhs
        if rhs not in self._line_cache:
            t = self.tmp()
            self.line(f"{t} = {rhs}")
            self._line_cache[rhs] = t
        return self._line_cache[rhs]

    def reset_cache(self) -> None:
        self._cache.clear()
        self._line_cache.clear()

    def scalar_closure(self, attr: str) -> str:
        name = f"_s_{attr}"
        self.closures[name] = getattr(self.app, attr)
        return name

    def array_closure(self, attr: str) -> Tuple[str, Tuple[int, ...]]:
        key = (attr, "num")
        if key not in self._attr_arrays:
            arr = np.asarray(getattr(self.app, attr))
            name = f"_a_{attr}"
            self.closures[name] = arr
            self._attr_arrays[key] = name
        name = self._attr_arrays[key]
        return name, self.closures[name].shape  # type: ignore[union-attr]

    def codes_closure(self, attr: str) -> Tuple[str, int]:
        """Ord-code array for a string attribute (==/!= comparisons only)."""
        key = (attr, "str")
        if key not in self._attr_arrays:
            s = getattr(self.app, attr)
            name = f"_c_{attr}"
            self.closures[name] = np.asarray(
                [ord(ch) for ch in s], dtype=np.int64
            )
            self._attr_arrays[key] = name
        name = self._attr_arrays[key]
        return name, len(self.closures[name])  # type: ignore[arg-type]

    def kind(self, e: Expr) -> str:
        return _expr_kind(e, self.app)

    # -- expression rendering ---------------------------------------------------------
    def expr(self, e: Expr) -> str:
        if isinstance(e, Const):
            if isinstance(e.value, str):
                raise KernelBuildError("string constant outside a comparison")
            return repr(e.value)
        if isinstance(e, Index):
            return "gi" if e.axis == "i" else "gj"
        if isinstance(e, SelfScalar):
            value = getattr(self.app, e.attr)
            if isinstance(value, str):
                raise KernelBuildError("string attribute outside a comparison")
            return self.scalar_closure(e.attr)
        if isinstance(e, SelfElem):
            if isinstance(getattr(self.app, e.attr), str):
                raise KernelBuildError(
                    f"string element self.{e.attr}[...] outside a comparison"
                )
            name, shape = self.array_closure(e.attr)
            idx = self.expr(e.index)
            return f"{name}[np.clip({idx}, 0, {shape[0] - 1})]"
        if isinstance(e, SelfElem2):
            name, shape = self.array_closure(e.attr)
            r, c = self.expr(e.row), self.expr(e.col)
            return (
                f"{name}[np.clip({r}, 0, {shape[0] - 1}),"
                f" np.clip({c}, 0, {shape[1] - 1})]"
            )
        if isinstance(e, DepRead):
            return self.dep_read(e)
        if isinstance(e, Present):
            return self.present(e)
        if isinstance(e, Bin):
            return f"({self.expr(e.left)} {e.op} {self.expr(e.right)})"
        if isinstance(e, Neg):
            return f"(-{self.expr(e.operand)})"
        if isinstance(e, Cmp):
            return self.cmp(e)
        if isinstance(e, BoolE):
            fn = "np.logical_and" if e.op == "and" else "np.logical_or"
            out = self.expr(e.parts[0])
            for p in e.parts[1:]:
                out = f"{fn}({out}, {self.expr(p)})"
            return out
        if isinstance(e, NotE):
            return f"np.logical_not({self.expr(e.operand)})"
        if isinstance(e, Call):
            return self.call(e)
        if isinstance(e, Cond):
            return (
                f"np.where({self.expr(e.test)}, {self.expr(e.then)},"
                f" {self.expr(e.orelse)})"
            )
        if isinstance(e, Reduce):
            return self.reduce(e)
        raise KernelBuildError(f"unemittable node {type(e).__name__}")

    def str_code(self, e: Expr) -> str:
        if isinstance(e, Const) and isinstance(e.value, str):
            return str(ord(e.value)) if len(e.value) == 1 else "-1"
        if isinstance(e, SelfElem) and isinstance(
            getattr(self.app, e.attr), str
        ):
            name, length = self.codes_closure(e.attr)
            idx = self.expr(e.index)
            return f"{name}[np.clip({idx}, 0, {max(length - 1, 0)})]"
        raise KernelBuildError("string value outside a simple comparison")

    def cmp(self, e: Cmp) -> str:
        lk, rk = self.kind(e.left), self.kind(e.right)
        if "str" in (lk, rk):
            left, right = self.str_code(e.left), self.str_code(e.right)
        else:
            left, right = self.expr(e.left), self.expr(e.right)
        return f"({left} {e.op} {right})"

    def call(self, e: Call) -> str:
        if e.fn in ("max", "min"):
            fold = "np.maximum" if e.fn == "max" else "np.minimum"
            out = self.expr(e.args[0])
            for a in e.args[1:]:
                out = f"{fold}({out}, {self.expr(a)})"
            return out
        if e.fn == "abs":
            return f"np.abs({self.expr(e.args[0])})"
        if e.fn in ("int", "float"):
            operand = e.args[0]
            rendered = self.expr(operand)
            kind = self.kind(operand)
            if e.fn == "int" and kind == "float":
                return f"np.trunc({rendered}).astype(np.int64)"
            if e.fn == "float" and kind != "float":
                return f"({rendered} * 1.0)"
            return f"({rendered})"
        raise KernelBuildError(f"call {e.fn}() is not emittable")

    def reduce(self, e: Reduce) -> str:
        ident = "_minv" if e.fn == "max" else "_maxv"
        self.ident_closure()
        fold = "np.maximum" if e.fn == "max" else "np.minimum"
        out = None
        for g, x in e.items:
            term = self.expr(x)
            if g is not None:
                term = f"np.where({self.expr(g)}, {term}, {ident})"
            out = term if out is None else f"{fold}({out}, {term})"
        if out is None:  # pragma: no cover - lifter rejects empty reduces
            raise KernelBuildError("empty reduction")
        return out

    def ident_closure(self) -> None:
        dtype = np.dtype(type(self.app).value_dtype)
        if dtype.kind in ("i", "u"):
            self.closures["_minv"] = int(np.iinfo(dtype).min // 4)
            self.closures["_maxv"] = int(np.iinfo(dtype).max // 4)
        else:
            self.closures["_minv"] = -np.inf
            self.closures["_maxv"] = np.inf

    def _index_offset(self, e: Expr):
        """``(axis, k)`` when ``e`` is ``Index +- const``, else None."""
        if isinstance(e, Index):
            return e.axis, 0
        if isinstance(e, Bin) and e.op in ("+", "-"):
            left, right = e.left, e.right
            if isinstance(left, Index) and isinstance(right, Const) and isinstance(right.value, int):
                return left.axis, (right.value if e.op == "+" else -right.value)
            if (
                e.op == "+"
                and isinstance(right, Index)
                and isinstance(left, Const)
                and isinstance(left.value, int)
            ):
                return right.axis, left.value
        return None

    def _axis_conds(self, e: Expr, temp: str, size: int) -> Optional[List[str]]:
        """Bounds comparisons for ``0 <= e < size``, minus the provable ones.

        Lane coordinates satisfy ``gi in [0, H-1]`` / ``gj in [0, W-1]``,
        so for a stencil index ``Index +- k`` at most one side of the
        bounds check can actually fail; the other folds away.
        """
        off = self._index_offset(e)
        if off is None:
            return None
        axis, k = off
        span = (self.H if axis == "i" else self.W) - 1
        conds = []
        if k < 0:
            conds.append(f"({temp} >= 0)")
        if span + k >= size:
            conds.append(f"({temp} < {size})")
        return conds

    def _bounds_mask(self, e: "Present | DepRead", r: str, c: str) -> str:
        conds = self._axis_conds(e.row, r, self.H)
        if conds is None:
            conds = [f"({r} >= 0)", f"({r} < {self.H})"]
        cconds = self._axis_conds(e.col, c, self.W)
        if cconds is None:
            cconds = [f"({c} >= 0)", f"({c} < {self.W})"]
        conds += cconds
        terms = [self.cached(cond) for cond in conds]
        if self.has_act:
            terms.append(
                self.cached(
                    f"_act(np.clip({r}, 0, {self.H - 1}),"
                    f" np.clip({c}, 0, {self.W - 1}))"
                )
            )
        if not terms:
            return "True"
        mask = terms[0]
        for term in terms[1:]:
            mask = f"np.logical_and({mask}, {term})"
        return mask

    def dep_read(self, e: DepRead) -> str:
        if e in self._cache:
            return self._cache[e]
        r = self.cached(self.expr(e.row))
        c = self.cached(self.expr(e.col))
        ri = self.cached(f"np.clip({r} - r0 + oi, 0, _wh - 1)")
        ci = self.cached(f"np.clip({c} - c0 + oj, 0, _ww - 1)")
        gather = f"window[{ri}, {ci}]"
        mask = None if e.default is None else self._bounds_mask(e, r, c)
        if mask is None or mask == "True":
            t = self.cached(gather)
        else:
            t = self.tmp()
            m = self.cached(mask)
            self.line(f"{t} = np.where({m}, {gather}, {self.expr(e.default)})")
        self._cache[e] = t
        return t

    def present(self, e: Present) -> str:
        if e in self._cache:
            return self._cache[e]
        r = self.cached(self.expr(e.row))
        c = self.cached(self.expr(e.col))
        t = self.cached(self._bounds_mask(e, r, c))
        self._cache[e] = t
        return t

    # -- case chain -------------------------------------------------------------------
    def emit_cases(
        self, cases, override: Optional[Dict[int, str]] = None
    ) -> None:
        """Emit ``_res`` = first-match decision list as a where-chain."""
        override = override or {}
        rendered = []
        for idx, (guard, value) in enumerate(cases):
            g = None if guard is None else self.expr(guard)
            v = override.get(idx) or self.expr(value)
            rendered.append((g, v))
        # the last case acts as the default: by termination, some case
        # always fires, so its guard is redundant once the others failed
        _, default = rendered[-1]
        self.line(f"_res = {default}")
        for g, v in reversed(rendered[:-1]):
            self.line(f"_res = np.where({g}, {v}, _res)")


def _emit_kernel(cls: Classification, app, dag) -> Tuple[str, Dict[str, object]]:
    act = _make_act(dag)
    em = _Emitter(app, dag, has_act=act is not None)
    if act is not None:
        em.closures["_act"] = act
    em.indent = 1
    em.line("_wh, _ww = window.shape")

    if cls.klass == "ANTIDIAG_WAVEFRONT":
        a, _b = cls.rank  # type: ignore[misc]
        if a == 1:  # rank (1, 1): levels are i + j
            em.line("for _s in range(0, h + w - 1):")
            em.indent = 2
            em.line("li = np.arange(max(0, _s - w + 1), min(h - 1, _s) + 1)")
            em.line("lj = _s - li")
        else:  # rank (-1, 1): levels are j - i
            em.line("for _s in range(-(h - 1), w):")
            em.indent = 2
            em.line("li = np.arange(max(0, -_s), min(h - 1, w - 1 - _s) + 1)")
            em.line("lj = li + _s")
        _emit_level_body(em, cls, act)
    elif cls.klass == "ELEMENTWISE":
        em.line("for _r in range(h):")
        em.indent = 2
        em.line("li = np.full(w, _r)")
        em.line("lj = np.arange(w)")
        _emit_level_body(em, cls, act)
    elif cls.klass == "ROW_SCAN_PREFIX":
        if act is not None:
            raise KernelBuildError(
                "prefix-scan emission requires a fully active row"
            )
        _emit_row_scan(em, cls)
    else:  # pragma: no cover - caller filters OPAQUE
        raise KernelBuildError(f"no emitter for class {cls.klass}")

    em.indent = 1
    em.line("return True")
    body = "\n".join(em.lines)
    source = f"def compute_tile(r0, c0, window, oi, oj, h, w):\n{body}\n"
    return source, em.closures


def _emit_level_body(em: _Emitter, cls: Classification, act) -> None:
    em.line("gi = r0 + li")
    em.line("gj = c0 + lj")
    if act is not None:
        em.line("_ok = _act(gi, gj)")
        em.line("li, lj = li[_ok], lj[_ok]")
        em.line("gi, gj = gi[_ok], gj[_ok]")
        em.line("if gi.size == 0:")
        em.line("    continue")
    em.line("wi = oi + li")
    em.line("wj = oj + lj")
    em.reset_cache()
    em.emit_cases(cls.ir.cases)  # type: ignore[union-attr]
    em.line("window[wi, wj] = _res")


def _emit_row_scan(em: _Emitter, cls: Classification) -> None:
    form = cls.row_scan
    assert form is not None and cls.ir is not None
    em.ident_closure()
    em.line("lj = np.arange(w)")
    em.line("gj = c0 + lj")
    em.line("for _r in range(h):")
    em.indent = 2
    em.line("li = np.full(w, _r)")
    em.line("gi = r0 + li")
    em.line("wi = oi + _r")
    em.line("wj = oj + lj")
    em.reset_cache()
    # the stride is row-constant: render it against scalar coordinates
    scalar = _ScalarRowEmitter(em)
    em.line(f"_stride = int({scalar.expr(form.stride)})")
    em.line(f"_base = np.zeros(w, dtype=window.dtype) + ({em.expr(form.base)})")
    for idx in reversed(form.pins):
        # pinned cases chain through the scan: their (dependency-free)
        # values join the base wherever their guards fire
        guard, value = cls.ir.cases[idx]
        assert guard is not None
        em.line(
            f"_base = np.where({em.expr(guard)}, {em.expr(value)}, _base)"
        )
    em.line("_nc = -(-w // _stride)")
    em.line("_B = np.concatenate([_base, np.full(_nc * _stride - w, _minv, dtype=_base.dtype)]).reshape(_nc, _stride)")
    em.line("_sr = np.arange(_stride)")
    em.line("_seed = np.where(c0 + _sr - _stride >= 0, window[wi, np.clip(oj + _sr - _stride, 0, _ww - 1)], _minv)")
    if form.lane_add:
        # lane-varying add: v_k = max(b_k, v_{k-1} + a_k) solves to
        # accumulate(b - S) + S with S the inclusive prefix sum of a
        em.line(f"_addv = np.zeros(w, dtype=window.dtype) + ({em.expr(form.add)})")
        em.line("_A = np.concatenate([_addv, np.zeros(_nc * _stride - w, dtype=_addv.dtype)]).reshape(_nc, _stride)")
        em.line("_B[0] = np.maximum(_B[0], _seed + _A[0])")
        em.line("_S = np.cumsum(_A, axis=0)")
        em.line("_T = np.maximum.accumulate(_B - _S, axis=0) + _S")
    else:
        em.line(f"_add = {scalar.expr(form.add)}")
        em.line("_B[0] = np.maximum(_B[0], _seed + _add)")
        em.line("_k = np.arange(_nc)[:, None]")
        em.line("_T = np.maximum.accumulate(_B - _k * _add, axis=0) + _k * _add")
    em.line("_scan = _T.reshape(-1)[:w]")
    em.emit_cases(cls.ir.cases, override={_scan_case_index(cls): "_scan"})
    em.line("window[wi, wj] = _res")


def _scan_case_index(cls: Classification) -> int:
    form = cls.row_scan
    assert form is not None and cls.ir is not None
    from .ir import walk_expr

    for idx, (guard, value) in enumerate(cls.ir.cases):
        if any(n == form.read for n in walk_expr(value)):
            return idx
    raise KernelBuildError("row-scan case vanished")  # pragma: no cover


class _ScalarRowEmitter:
    """Renders row-constant exprs with scalar ``gi`` (``r0 + _r``)."""

    def __init__(self, em: _Emitter) -> None:
        self.em = em

    def expr(self, e: Expr) -> str:
        if isinstance(e, Index):
            if e.axis == "i":
                return "(r0 + _r)"
            raise KernelBuildError("j inside a row-constant expression")
        if isinstance(e, SelfElem):
            name, shape = self.em.array_closure(e.attr)
            return f"{name}[np.clip({self.expr(e.index)}, 0, {shape[0] - 1})]"
        if isinstance(e, SelfElem2):
            name, shape = self.em.array_closure(e.attr)
            return (
                f"{name}[np.clip({self.expr(e.row)}, 0, {shape[0] - 1}),"
                f" np.clip({self.expr(e.col)}, 0, {shape[1] - 1})]"
            )
        if isinstance(e, SelfScalar):
            return self.em.scalar_closure(e.attr)
        if isinstance(e, Const):
            return repr(e.value)
        if isinstance(e, Bin):
            return f"({self.expr(e.left)} {e.op} {self.expr(e.right)})"
        if isinstance(e, Neg):
            return f"(-{self.expr(e.operand)})"
        if isinstance(e, Call) and e.fn in ("max", "min", "abs", "int", "float"):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{e.fn}({args})"
        raise KernelBuildError(
            f"{type(e).__name__} inside a row-constant expression"
        )


def _kernel_for(cls: Classification, app, dag) -> AutoKernel:
    """Emit the kernel for a non-OPAQUE classification (may raise)."""
    if cls.klass in ("TENSOR_HYPERPLANE", "TREE_LEVEL_GATHER"):
        from .domainkern import TensorHyperplaneKernel, TreeLevelKernel

        maker = (
            TensorHyperplaneKernel
            if cls.klass == "TENSOR_HYPERPLANE"
            else TreeLevelKernel
        )
        k = maker(app, dag)
        return AutoKernel(
            fn=k,
            pads=k.pads,
            klass=cls.klass,
            subject=cls.subject,
            source=k.source,
            mode=k.mode,
        )
    pads = _pads_for(cls.entries, app)
    if cls.klass == "ANTIDIAG_WAVEFRONT":
        from .flatsweep import build_flat_sweep

        try:
            k = build_flat_sweep(cls, app, dag, pads)
        except KernelBuildError:
            pass  # per-level emission below still applies
        else:
            return AutoKernel(
                fn=k,
                pads=pads,
                klass=cls.klass,
                subject=cls.subject,
                source=k.source,
            )
    source, closures = _emit_kernel(cls, app, dag)
    namespace = dict(closures)
    code = compile(source, f"<autokernel:{cls.subject}>", "exec")
    exec(code, namespace)
    return AutoKernel(
        fn=namespace["compute_tile"],
        pads=pads,
        klass=cls.klass,
        subject=cls.subject,
        source=source,
    )


def _spec_for(cls: Classification) -> KernelSpec:
    return KernelSpec(
        subject=cls.subject,
        klass=cls.klass,
        rank=cls.rank,
        ir=cls.ir,
        entries=cls.entries,
        row_scan=cls.row_scan,
        case_kinds=cls.case_kinds,
    )


def kernel_from_spec(spec: KernelSpec, app, dag) -> Optional[AutoKernel]:
    """Re-emit a kernel from a shipped :class:`KernelSpec`.

    Skips classification and the numeric probes — the master already
    ran them pre-fork; the spec is trusted. Returns None when emission
    fails (the worker then computes interpreted, never wrongly).
    """
    cls = Classification(
        subject=spec.subject,
        klass=spec.klass,
        report=AnalysisReport(subject=spec.subject),
        ir=spec.ir,
        entries=spec.entries,
        rank=spec.rank,
        row_scan=spec.row_scan,
        case_kinds=spec.case_kinds,
    )
    try:
        kernel = _kernel_for(cls, app, dag)
    except KernelBuildError:
        return None
    kernel.spec = spec
    return kernel


def build_autokernel(app, dag, subject: str = ""):
    """Classify ``app`` and emit its tile kernel.

    Returns ``(AutoKernel | None, Classification)``. The build is a pure
    function of ``(type(app), app data, dag)``; the returned kernel
    carries a picklable ``spec`` so multiprocessing workers re-emit it
    from :func:`kernel_from_spec` instead of pickling the generated
    function (or re-running classification post-fork).
    """
    cls = classify_app(app, dag, subject=subject)
    if cls.klass == "OPAQUE":
        return None, cls
    try:
        kernel = _kernel_for(cls, app, dag)
    except KernelBuildError as exc:
        cls.report.add("DP403", f"kernel emission failed: {exc}")
        cls.klass = "OPAQUE"
        return None, cls
    kernel.spec = _spec_for(cls)
    return kernel, cls
