"""Flat-sweep (skewed-buffer) emission for antidiagonal wavefront kernels.

The per-level emitter in :mod:`repro.analysis.codegen` pays one fancy
``window[wi, wj]`` gather per dependency per wavefront level — the exact
cost PR 7's hand Smith-Waterman kernel (``repro.apps.smith_waterman``)
eliminated by *skewing* the tile into a buffer where every antidiagonal
is one contiguous run. This module generalizes that technique to any
``ANTIDIAG_WAVEFRONT`` classification with constant dependency offsets:

1. **Plan** (cached per ``(rank, pads, h, w)`` in :data:`_PLAN_CACHE`) —
   the skew geometry: a flat buffer slot for every cell of the tile plus
   its halo frame, the per-diagonal ``(row, lo, hi)`` spans, and the
   gather/scatter index vectors. Building it costs a few array ops and
   happens once per tile shape per process; under the mp engine the
   master builds it pre-fork so forked places inherit it copy-on-write.
2. **Prelude** (generated once per kernel) — every maximal
   *dependency-free* subexpression of the IR (boundary guards,
   ``present()`` masks, substitution scores, activity tests) is
   evaluated over the whole tile as a broadcast 2-D array, then skewed
   into buffer geometry with one scatter.
3. **Sweep** (generated lazily per *boundary profile*) — the per-diagonal
   loop, where every dependency read is a contiguous ``B2[row, lo:hi]``
   slice. Before sweeping, each boolean prelude leaf is classified as
   all-true / all-false / mixed over the tile; the ``(state, ...)``
   tuple selects a sweep variant with those leaves constant-folded
   away. Interior tiles — where every ``present()`` is true and no
   boundary case fires — run a branch-free sweep of ~6 slice ops per
   diagonal, matching the hand kernel; only the O(grid-edge) boundary
   tiles pay the masked general variant. This is the "scalar fixups
   instead of per-lane bounds masks" trade: boundary handling costs
   nothing on the hot interior path.
4. **Gather/scatter** — one ``flat.take(..., mode="clip")`` fills the
   buffer from the window (halo included); one fancy store writes the
   tile cells back. Index vectors are cached per ``(stride, oi, oj)``,
   so interior tiles reuse them verbatim.

Out-of-window clipped reads produce garbage lanes exactly like the
per-level emitter's ``np.clip`` gathers; the IR's own boundary cases and
presence masks discard them, which the differential tests
(``tests/analysis/test_codegen.py``) verify bit-for-bit per app.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .infer import _expr_kind
from .ir import (
    Bin,
    BoolE,
    Call,
    Cmp,
    Cond,
    Const,
    DepRead,
    Expr,
    Index,
    Neg,
    NotE,
    Present,
    Reduce,
    SelfElem,
    SelfElem2,
    SelfScalar,
    walk_expr,
)

__all__ = ["FlatSweepKernel", "build_flat_sweep"]


def _has_dep(e: Expr) -> bool:
    return any(isinstance(n, DepRead) for n in walk_expr(e))


# -- the skew plan ----------------------------------------------------------------------


class _SweepPlan:
    """Skew geometry for one ``(rank, pads, h, w)`` combination.

    Virtual coordinates: tile cell ``(li, lj)`` sits at
    ``(vi, vj) = (li + pt, lj + pl)``; the halo frame fills the rest of
    the ``(h + pt + pb) x (w + pl + pr)`` extended rectangle. Diagonal
    ``a*vi + vj`` (normalized to start at 0) is buffer row; ``vi`` is
    buffer column, so every diagonal is a contiguous run.
    """

    def __init__(self, a: int, pads: Tuple[int, int, int, int], h: int, w: int):
        pt, pb, pl, pr = pads
        eh, ew = h + pt + pb, w + pl + pr
        self.a, self.pads, self.h, self.w = a, pads, h, w
        vi = np.repeat(np.arange(eh), ew)
        vj = np.tile(np.arange(ew), eh)
        if a == 1:
            s = vi + vj
            self.norm = 0
        else:  # rank (-1, 1): diagonals are vj - vi
            s = vj - vi + (eh - 1)
            self.norm = eh - 1
        self.nrows = eh + ew - 1
        self.ncols = eh
        self.nslots = self.nrows * self.ncols
        self.vi, self.vj = vi, vj
        self.b_slot = s * self.ncols + vi
        # tile cells in row-major order, for leaf skewing and scatter
        cli = np.repeat(np.arange(h), w) + pt
        clj = np.tile(np.arange(w), h) + pl
        cs = (cli + clj) if a == 1 else (clj - cli + (eh - 1))
        self.cell_slot = cs * self.ncols + cli
        self.cli, self.clj = cli - pt, clj - pl  # tile-relative again
        # per-diagonal spans over tile cells: (buffer row, col lo, col hi+1)
        spans: List[Tuple[int, int, int]] = []
        if a == 1:
            for ss in range(0, h + w - 1):
                lo, hi = max(0, ss - w + 1), min(h - 1, ss)
                spans.append((ss + pt + pl, lo + pt, hi + 1 + pt))
        else:
            for ss in range(-(h - 1), w):
                lo, hi = max(0, -ss), min(h - 1, w - 1 - ss)
                spans.append((ss + pl - pt + eh - 1, lo + pt, hi + 1 + pt))
        self.spans = spans
        self._idx: Dict[Tuple[int, int, int], Tuple[np.ndarray, np.ndarray]] = {}

    def gather_scatter(
        self, stride: int, oi: int, oj: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Window-flat gather/scatter index vectors, cached per geometry."""
        key = (stride, oi, oj)
        got = self._idx.get(key)
        if got is None:
            pt, _pb, pl, _pr = self.pads
            gidx = (oi - pt + self.vi) * stride + (oj - pl + self.vj)
            sidx = (oi + self.cli) * stride + (oj + self.clj)
            got = (gidx, sidx)
            self._idx[key] = got
        return got


#: plan cache shared by every kernel instance in the process; the mp
#: master warms it pre-fork (see ``mp_engine``) so workers inherit the
#: index arrays through fork copy-on-write instead of rebuilding them
_PLAN_CACHE: Dict[Tuple[int, Tuple[int, int, int, int], int, int], _SweepPlan] = {}


def _plan_for(a: int, pads: Tuple[int, int, int, int], h: int, w: int) -> _SweepPlan:
    key = (a, pads, h, w)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = _SweepPlan(a, pads, h, w)
        _PLAN_CACHE[key] = plan
    return plan


# -- leaf extraction and the prelude ----------------------------------------------------


class _LeafTable:
    """Interns maximal dependency-free subexpressions as prelude leaves."""

    def __init__(self) -> None:
        self.exprs: List[Expr] = []
        self._ids: Dict[Expr, int] = {}

    def intern(self, e: Expr) -> int:
        got = self._ids.get(e)
        if got is None:
            got = len(self.exprs)
            self._ids[e] = got
            self.exprs.append(e)
        return got


def _emit_prelude(em, leaves: _LeafTable) -> str:
    """``def _leaves(r0, c0, h, w)`` evaluating every leaf tile-wide.

    ``em`` is a :class:`repro.analysis.codegen._Emitter`; its ``gi``/
    ``gj`` lane vectors are bound to broadcast column/row vectors here,
    so every rendered expression evaluates over the full tile at once.
    """
    em.indent = 1
    em.lines = []
    em.reset_cache()
    em.line("gi = (r0 + np.arange(h)).reshape(-1, 1)")
    em.line("gj = (c0 + np.arange(w)).reshape(1, -1)")
    names = []
    for k, e in enumerate(leaves.exprs):
        names.append(f"_lv{k}")
        em.line(f"_lv{k} = {em.expr(e)}")
    em.line(f"return ({', '.join(names)}{',' if names else ''})")
    body = "\n".join(em.lines)
    return f"def _leaves(r0, c0, h, w):\n{body}\n"


# -- the profile-specialized sweep emitter ----------------------------------------------


class _SliceEmitter:
    """Renders the case IR in slice context for one boundary profile.

    Dependency reads become contiguous ``B2[...]`` slices; leaves render
    as their skewed-slice, their scalar, or — when the profile says a
    boolean leaf is uniform over the tile — fold to a constant, erasing
    the mask entirely.
    """

    def __init__(self, em, leaves: _LeafTable, offsets, profile, a: int) -> None:
        self.em = em  # the codegen._Emitter (closures / kinds / app)
        self.leaves = leaves
        self.offsets = offsets  # DepRead -> (di, dj)
        self.profile = profile
        self.a = a
        self.lines: List[str] = []
        self._line_cache: Dict[str, str] = {}
        self._tmp = 0

    def line(self, text: str) -> None:
        self.lines.append("        " + text)

    def cached(self, rhs: str) -> str:
        if rhs.isidentifier():
            return rhs
        t = self._line_cache.get(rhs)
        if t is None:
            self._tmp += 1
            t = f"_x{self._tmp}"
            self.line(f"{t} = {rhs}")
            self._line_cache[rhs] = t
        return t

    # a leaf renders as True/False (folded bool), a scalar name, or a slice
    def leaf(self, e: Expr):
        k = self.leaves.intern(e)
        state = self.profile[k]
        if state == "T":
            return True
        if state == "F":
            return False
        if state == "S":
            return f"_L{k}"
        return self.cached(f"_L{k}[_vd, _a:_b]")

    def _col(self, di: int) -> str:
        if di == 0:
            return "_a:_b"
        return f"_a{di:+d}:_b{di:+d}"

    def dep_slice(self, e: DepRead) -> str:
        di, dj = self.offsets[e]
        dr = self.a * di + dj
        return self.cached(f"B2[_vd - {-dr}, {self._col(di)}]")

    def boolv(self, e: Expr):
        """Boolean context: True / False / a rendered string."""
        if isinstance(e, Const):
            return bool(e.value)
        if not _has_dep(e):
            return self.leaf(e)
        if isinstance(e, BoolE):
            parts = [self.boolv(p) for p in e.parts]
            if e.op == "and":
                if any(p is False for p in parts):
                    return False
                parts = [p for p in parts if p is not True]
                fn = "np.logical_and"
                if not parts:
                    return True
            else:
                if any(p is True for p in parts):
                    return True
                parts = [p for p in parts if p is not False]
                fn = "np.logical_or"
                if not parts:
                    return False
            out = str(parts[0])
            for p in parts[1:]:
                out = f"{fn}({out}, {p})"
            return out
        if isinstance(e, NotE):
            inner = self.boolv(e.operand)
            if isinstance(inner, bool):
                return not inner
            return f"np.logical_not({inner})"
        if isinstance(e, Cmp):
            return f"({self.val(e.left)} {e.op} {self.val(e.right)})"
        return self.val(e)

    def val(self, e: Expr) -> str:
        em = self.em
        if isinstance(e, Const):
            if isinstance(e.value, str):
                from .codegen import KernelBuildError

                raise KernelBuildError("string constant in a dependency expression")
            return repr(e.value)
        if not _has_dep(e):
            v = self.leaf(e)
            return repr(v) if isinstance(v, bool) else v
        if isinstance(e, DepRead):
            if e.default is None:
                return self.dep_slice(e)
            mask = self.boolv(Present(e.row, e.col))
            if mask is True:
                return self.dep_slice(e)
            if mask is False:
                return self.val(e.default)
            return self.cached(
                f"np.where({mask}, {self.dep_slice(e)}, {self.val(e.default)})"
            )
        if isinstance(e, Bin):
            return f"({self.val(e.left)} {e.op} {self.val(e.right)})"
        if isinstance(e, Neg):
            return f"(-{self.val(e.operand)})"
        if isinstance(e, Cmp):
            return f"({self.val(e.left)} {e.op} {self.val(e.right)})"
        if isinstance(e, (BoolE, NotE)):
            v = self.boolv(e)
            return repr(v) if isinstance(v, bool) else v
        if isinstance(e, Cond):
            t = self.boolv(e.test)
            if t is True:
                return self.val(e.then)
            if t is False:
                return self.val(e.orelse)
            return f"np.where({t}, {self.val(e.then)}, {self.val(e.orelse)})"
        if isinstance(e, Call):
            if e.fn in ("max", "min"):
                fold = "np.maximum" if e.fn == "max" else "np.minimum"
                out = self.val(e.args[0])
                for x in e.args[1:]:
                    out = f"{fold}({out}, {self.val(x)})"
                return out
            if e.fn == "abs":
                return f"np.abs({self.val(e.args[0])})"
            if e.fn in ("int", "float"):
                operand = e.args[0]
                rendered = self.val(operand)
                kind = _expr_kind(operand, em.app)
                if e.fn == "int" and kind == "float":
                    return f"np.trunc({rendered}).astype(np.int64)"
                if e.fn == "float" and kind != "float":
                    return f"({rendered} * 1.0)"
                return f"({rendered})"
        if isinstance(e, Reduce):
            ident = "_minv" if e.fn == "max" else "_maxv"
            em.ident_closure()
            fold = "np.maximum" if e.fn == "max" else "np.minimum"
            out = None
            for g, x in e.items:
                gv = True if g is None else self.boolv(g)
                if gv is False:
                    continue
                term = self.val(x)
                if gv is not True:
                    term = f"np.where({gv}, {term}, {ident})"
                out = term if out is None else f"{fold}({out}, {term})"
            return out if out is not None else ident
        from .codegen import KernelBuildError

        raise KernelBuildError(
            f"{type(e).__name__} is not flat-sweep emittable"
        )

    def emit(self, cases) -> str:
        """The sweep body for this profile: one where-chain per diagonal."""
        rendered: List[Tuple[object, str]] = []
        for guard, value in cases:
            g = True if guard is None else self.boolv(guard)
            if g is False:
                continue
            rendered.append((g, self.val(value)))
            if g is True:
                break
        if not rendered:  # pragma: no cover - a decision list always fires
            from .codegen import KernelBuildError

            raise KernelBuildError("every case folded away")
        _, default = rendered[-1]
        self.line(f"_res = {default}")
        for g, v in reversed(rendered[:-1]):
            self.line(f"_res = np.where({g}, {v}, _res)")
        self.line("B2[_vd, _a:_b] = _res")
        return "\n".join(self.lines)


# -- the kernel object ------------------------------------------------------------------


class FlatSweepKernel:
    """A compiled flat-sweep tile kernel (the ``fn`` of an AutoKernel)."""

    def __init__(self, app, cases, leaves: _LeafTable, offsets, a: int,
                 pads: Tuple[int, int, int, int], em, prelude_src: str) -> None:
        self.app = app
        self.cases = cases
        self.leaves = leaves
        self.offsets = offsets
        self.a = a
        self.pads = pads
        self._em = em
        self.prelude_source = prelude_src
        ns = dict(em.closures)
        exec(compile(prelude_src, "<flatsweep:prelude>", "exec"), ns)
        self._leaves_fn = ns["_leaves"]
        self._sweeps: Dict[Tuple[str, ...], object] = {}
        self._sweep_sources: Dict[Tuple[str, ...], str] = {}
        # compile the fully-general variant eagerly: it both smoke-tests
        # emission at build time (so failures demote to the per-level
        # emitter instead of surfacing mid-run) and seeds ``source``
        self.general_profile = tuple("M" for _ in leaves.exprs)
        self._compile(self.general_profile)

    # one sweep per boundary profile, compiled on first sight
    def _compile(self, profile: Tuple[str, ...]):
        se = _SliceEmitter(self._em, self.leaves, self.offsets, profile, self.a)
        body = se.emit(self.cases)
        names = ", ".join(f"_L{k}" for k in range(len(self.leaves.exprs)))
        unpack = f"    ({names},) = _leaves\n" if names else ""
        src = (
            f"def _sweep(B2, _spans, _leaves):\n{unpack}"
            f"    for _vd, _a, _b in _spans:\n{body}\n"
        )
        ns = {
            "np": np,
            "_minv": self._em.closures.get("_minv"),
            "_maxv": self._em.closures.get("_maxv"),
        }
        exec(compile(src, f"<flatsweep:{''.join(profile)}>", "exec"), ns)
        fn = ns["_sweep"]
        self._sweeps[profile] = fn
        self._sweep_sources[profile] = src
        return fn

    def _skew(self, plan: _SweepPlan, arr: np.ndarray, h: int, w: int) -> np.ndarray:
        out = np.empty(plan.nslots, dtype=arr.dtype)
        out[plan.cell_slot] = np.broadcast_to(arr, (h, w)).ravel()
        return out.reshape(plan.nrows, plan.ncols)

    def __call__(self, r0, c0, window, oi, oj, h, w) -> bool:
        if h <= 0 or w <= 0:
            return True
        if not window.flags["C_CONTIGUOUS"]:
            return False  # the runtime falls back to the interpreted path
        plan = _plan_for(self.a, self.pads, h, w)
        states: List[str] = []
        payload: List[object] = []
        for v in self._leaves_fn(r0, c0, h, w):
            if np.ndim(v) == 0:
                if isinstance(v, (bool, np.bool_)):
                    states.append("T" if v else "F")
                    payload.append(None)
                else:
                    states.append("S")
                    payload.append(v)
                continue
            arr = np.asarray(v)
            if arr.dtype == np.bool_:
                if arr.all():
                    states.append("T")
                    payload.append(None)
                    continue
                if not arr.any():
                    states.append("F")
                    payload.append(None)
                    continue
                states.append("M")
            else:
                states.append("M")
            payload.append(self._skew(plan, arr, h, w))
        profile = tuple(states)
        sweep = self._sweeps.get(profile)
        if sweep is None:
            sweep = self._compile(profile)
        flat = window.ravel()
        stride = window.shape[1]
        gidx, sidx = plan.gather_scatter(stride, oi, oj)
        B = np.empty(plan.nslots, dtype=window.dtype)
        B[plan.b_slot] = flat.take(gidx, mode="clip")
        B2 = B.reshape(plan.nrows, plan.ncols)
        sweep(B2, plan.spans, tuple(payload))
        flat[sidx] = B.take(plan.cell_slot)
        return True

    @property
    def source(self) -> str:
        """Prelude + the general sweep variant, for ``--dump-kernel``."""
        general = self._sweep_sources[self.general_profile]
        return (
            "# flat-sweep kernel: gather -> prelude -> sweep -> scatter\n"
            "# (boundary-profile variants fold uniform masks; this is the\n"
            "#  fully-masked general variant)\n"
            f"{self.prelude_source}\n{general}"
        )


def build_flat_sweep(cls, app, dag, pads: Tuple[int, int, int, int]):
    """A :class:`FlatSweepKernel` for an ANTIDIAG classification.

    Raises :class:`repro.analysis.codegen.KernelBuildError` when the IR
    leaves the flat subset (data-dependent offsets, dependency-carrying
    case guards, activity predicates with no array form, ...); the
    caller then falls back to the per-level emitter.
    """
    from .codegen import KernelBuildError, _Emitter, _make_act

    if cls.klass != "ANTIDIAG_WAVEFRONT" or cls.ir is None:
        raise KernelBuildError("flat sweep requires an ANTIDIAG classification")
    a, _b = cls.rank
    # every dependency read must sit at a constant offset
    offsets: Dict[DepRead, Tuple[int, int]] = {}
    by_read = {e.read: e for e in cls.entries if e.read is not None}
    for guard, value in cls.ir.cases:
        if guard is not None and _has_dep(guard):
            # a dependency-valued guard could hijack the where-chain on
            # lanes whose reads are boundary garbage; stay per-level
            raise KernelBuildError("dependency read inside a case guard")
        for node in walk_expr(value):
            if isinstance(node, DepRead):
                entry = by_read.get(node)
                off = entry.const_offset if entry is not None else None
                if off is None:
                    raise KernelBuildError("data-dependent dependency offset")
                offsets[node] = off
    act = _make_act(dag)
    em = _Emitter(app, dag, has_act=act is not None)
    if act is not None:
        em.closures["_act"] = act
    em.ident_closure()
    # intern leaves in deterministic walk order (guards first, values after)
    leaves = _LeafTable()

    def _walk_leaves(e: Expr) -> None:
        if isinstance(e, Const):
            return
        if not _has_dep(e):
            leaves.intern(e)
            return
        if isinstance(e, DepRead):
            if e.default is not None:
                leaves.intern(Present(e.row, e.col))
                _walk_leaves(e.default)
            return
        for child in _children_of(e):
            _walk_leaves(child)

    for guard, value in cls.ir.cases:
        if guard is not None:
            _walk_leaves(guard)
        _walk_leaves(value)
    prelude_src = _emit_prelude(em, leaves)
    return FlatSweepKernel(
        app, cls.ir.cases, leaves, offsets, a, pads, em, prelude_src
    )


def _children_of(e: Expr):
    if isinstance(e, Bin):
        return (e.left, e.right)
    if isinstance(e, Neg):
        return (e.operand,)
    if isinstance(e, Cmp):
        return (e.left, e.right)
    if isinstance(e, BoolE):
        return tuple(e.parts)
    if isinstance(e, NotE):
        return (e.operand,)
    if isinstance(e, Call):
        return tuple(e.args)
    if isinstance(e, Cond):
        return (e.test, e.then, e.orelse)
    if isinstance(e, Reduce):
        out = []
        for g, x in e.items:
            if g is not None:
                out.append(g)
            out.append(x)
        return tuple(out)
    if isinstance(e, (SelfElem, SelfElem2, SelfScalar, Index, Present, Const)):
        # dep-free by construction (a DepRead cannot appear in an index
        # that reached footprint extraction as affine)
        return ()
    from .codegen import KernelBuildError

    raise KernelBuildError(f"unknown node {type(e).__name__}")
