"""Symbolic stencil verification: prove pattern invariants from offsets.

``Dag.validate()`` enumerates every cell — O(n·m) set churn that its own
docstring restricts to small DAGs. For *stencil* patterns none of that is
necessary: every structural property is a statement about the fixed offset
set, so it can be proved in O(#offsets) arithmetic, independent of the
matrix size (the nested-dataflow line of work — Tang; Dinh & Simhadri —
reasons about exactly these offset cones).

The three proofs
================

**Acyclicity.** A stencil is acyclic on every matrix size iff there is a
*ranking vector* ``d = (a, b)`` with ``d . o < 0`` for every offset ``o``:
then ``level(i, j) = a*i + b*j`` strictly decreases along every dependency
edge, so no cycle can close. Such a ``d`` exists iff the offsets span an
open half-plane — checked exactly with integer cross products (sort the
primitive directions angularly; feasible iff some circular gap exceeds
pi). The witness is constructed from the arc extremes and re-verified
against every offset, so a "pass" is a machine-checked proof.

**Inverse consistency.** ``StencilDag`` derives both relations from the
same offset set with the sign flipped (``anti(o) = -o``) and applies the
same bounds/activity predicate to both directions, so dependency and
anti-dependency are exact inverses *by construction*. When a subclass
overrides either method the algebraic argument no longer applies and the
verifier falls back to probing representative cells (interior + corners)
against the offset prediction.

**Boundary behaviour.** Each offset is clipped by specific borders
(``di < 0`` by the top ``|di|`` rows, and so on); cells where every
offset is clipped are the zero-indegree seeds. The verifier reports the
clipping borders per offset.

Static parallelism metrics
==========================

From the ranking vector the verifier also derives wavefront metrics:
depth (number of wavefront levels), maximum/average antichain width
(cells per level — the available parallelism), and lower/upper bounds on
the critical path length. Exact (vectorized) up to ``METRIC_EXACT_CELLS``
cells, closed-form estimates beyond that.
"""

from __future__ import annotations

import functools
from math import gcd
from typing import List, Optional, Sequence, Tuple

from repro.analysis.findings import AnalysisReport, Severity
from repro.errors import PatternError

__all__ = [
    "find_ranking_vector",
    "verify_offsets",
    "verify_stencil",
    "enumerate_verify",
    "verify_pattern",
    "try_symbolic_validate",
    "ENUMERATE_LIMIT",
    "METRIC_EXACT_CELLS",
]

Offset = Tuple[int, int]

#: enumeration fallback refuses DAGs larger than this many cells
ENUMERATE_LIMIT = 262_144

#: wavefront metrics are computed exactly (vectorized) up to this size
METRIC_EXACT_CELLS = 1_048_576


# -- ranking-vector existence (exact integer geometry) ---------------------------
def _primitive(v: Offset) -> Offset:
    g = gcd(abs(v[0]), abs(v[1]))
    return (v[0] // g, v[1] // g)


def _half(v: Offset) -> int:
    """0 for the upper half-plane (angle in [0, pi)), 1 for the lower."""
    return 0 if (v[1] > 0 or (v[1] == 0 and v[0] > 0)) else 1


def _cross(u: Offset, v: Offset) -> int:
    return u[0] * v[1] - u[1] * v[0]


def _angle_cmp(u: Offset, v: Offset) -> int:
    hu, hv = _half(u), _half(v)
    if hu != hv:
        return -1 if hu < hv else 1
    c = _cross(u, v)
    return -1 if c > 0 else (1 if c < 0 else 0)


def _satisfies(d: Offset, offsets: Sequence[Offset]) -> bool:
    return all(d[0] * di + d[1] * dj < 0 for di, dj in offsets)


def find_ranking_vector(offsets: Sequence[Offset]) -> Optional[Offset]:
    """An integer ``d`` with ``d . o < 0`` for every offset, or ``None``.

    ``None`` means no such vector exists, i.e. the offsets do not fit in
    an open half-plane and the stencil closes a cycle on a large enough
    matrix. The returned witness is gcd-reduced and biased toward small
    canonical vectors (``(1, 1)`` for the alignment stencils, axis
    vectors for the chain patterns).
    """
    offsets = [o for o in offsets]
    if not offsets or any(o == (0, 0) for o in offsets):
        return None
    prims = sorted(set(_primitive(o) for o in offsets))
    # exactly opposite primitive directions admit no open half-plane
    for p in prims:
        if (-p[0], -p[1]) in set(prims):
            return None
    # prefer a small canonical witness when one works
    small = sorted(
        (
            (a, b)
            for a in range(-3, 4)
            for b in range(-3, 4)
            if (a, b) != (0, 0)
        ),
        key=lambda d: (abs(d[0]) + abs(d[1]), -d[0] - d[1]),
    )
    for cand in small:
        if _satisfies(cand, offsets):
            return cand
    if len(prims) == 1:
        u = prims[0]
        d = (-u[0], -u[1])
        return d if _satisfies(d, offsets) else None
    # exact angular sort; feasible iff some circular gap exceeds pi
    order = sorted(prims, key=functools.cmp_to_key(_angle_cmp))
    n = len(order)
    for k in range(n):
        u = order[(k + 1) % n]  # first direction of the occupied arc
        w = order[k]  # last direction of the occupied arc
        if _cross(w, u) < 0:  # gap from w around to u is > pi
            # p . v > 0 on the closed arc [u, w]; d = -p separates strictly
            p = (w[1] - u[1], u[0] - w[0])
            d = _primitive((-p[0], -p[1]))
            if _satisfies(d, offsets):
                return d
    return None


def verify_offsets(offsets: Sequence[Offset], report: AnalysisReport) -> bool:
    """Raw offset-set sanity (DP104). Returns ``True`` when well formed."""
    ok = True
    if not offsets:
        report.add("DP104", "stencil has no offsets")
        return False
    if any(o == (0, 0) for o in offsets):
        report.add("DP104", "stencil contains the zero offset (0, 0): a self-loop")
        ok = False
    seen = set()
    for o in offsets:
        if o in seen:
            report.add("DP104", f"duplicate stencil offset {o}")
            ok = False
        seen.add(o)
    return ok


# -- the symbolic verifier ---------------------------------------------------------
def _clipping_borders(o: Offset) -> List[str]:
    di, dj = o
    borders = []
    if di < 0:
        borders.append(f"top {-di} row(s)")
    if di > 0:
        borders.append(f"bottom {di} row(s)")
    if dj < 0:
        borders.append(f"left {-dj} column(s)")
    if dj > 0:
        borders.append(f"right {dj} column(s)")
    return borders


def _wavefront_metrics(dag, d: Offset, report: AnalysisReport) -> None:
    """Populate ``report.metrics`` from the ranking vector ``d``."""
    import numpy as np

    a, b = d
    h, w = dag.height, dag.width
    offsets = tuple(dag.offsets)
    report.metrics["wavefront_vector"] = d
    report.metrics["boundary"] = {
        o: ", ".join(_clipping_borders(o)) for o in offsets
    }

    exact = h * w <= METRIC_EXACT_CELLS
    if exact:
        ii, jj = np.meshgrid(
            np.arange(h, dtype=np.int64), np.arange(w, dtype=np.int64),
            indexing="ij",
        )
        rows, cols = ii.ravel(), jj.ravel()
        mask = dag.is_active_array(rows, cols)
        if mask is None:
            if type(dag).is_active is not _base().is_active and h * w > 65_536:
                # scalar is_active over a large matrix defeats the point
                exact = False
            else:
                mask = np.fromiter(
                    (dag.is_active(int(i), int(j)) for i, j in zip(rows, cols)),
                    dtype=bool,
                    count=h * w,
                )
    if exact:
        levels = (a * rows + b * cols)[mask]
        active = int(mask.sum())
        if active == 0:
            report.add("DP106", "pattern has no active cells", severity=Severity.NOTE)
            return
        uniq, counts = np.unique(levels, return_counts=True)
        depth = int(len(uniq))
        width = int(counts.max())
    else:
        active = dag.active_cells_in_rect(0, h, 0, w)
        depth = abs(a) * (h - 1) + abs(b) * (w - 1) + 1
        width = -(-active // depth)  # ceil average as the estimate
    report.metrics["metrics_exact"] = exact
    report.metrics["active_cells"] = active
    report.metrics["wavefront_depth"] = depth
    report.metrics["max_antichain_width"] = width
    report.metrics["avg_parallelism"] = round(active / depth, 2)

    # critical-path bounds: every edge drops the level by at least m, so a
    # chain has at most (depth-1)//m + 1 vertices; repeating the single
    # most "usable" offset from a far corner gives the lower bound
    m = min(-(a * di + b * dj) for di, dj in offsets)
    upper = (depth - 1) // m + 1
    lower = 1
    for di, dj in offsets:
        steps = []
        if di != 0:
            steps.append((h - 1) // abs(di))
        if dj != 0:
            steps.append((w - 1) // abs(dj))
        lower = max(lower, min(steps) + 1)
    report.metrics["critical_path_bounds"] = (min(lower, upper), upper)


def _base():
    from repro.patterns.base import StencilDag

    return StencilDag


def _probe_cells(dag, report: AnalysisReport) -> None:
    """Probe-check overridden dependency methods against the offsets.

    Used when a :class:`StencilDag` subclass overrides ``get_dependency``
    or ``get_anti_dependency`` so the by-construction argument no longer
    holds: representative cells (an interior cell plus the four corners)
    are checked against the offset prediction. O(#offsets) per probe.
    """
    h, w = dag.height, dag.width
    offsets = tuple(dag.offsets)
    max_di = max(abs(di) for di, _ in offsets)
    max_dj = max(abs(dj) for _, dj in offsets)

    def predicted_deps(i, j):
        return sorted(
            (i + di, j + dj)
            for di, dj in offsets
            if dag.contains(i + di, j + dj) and dag.is_active(i + di, j + dj)
        )

    def predicted_anti(i, j):
        return sorted(
            (i - di, j - dj)
            for di, dj in offsets
            if dag.contains(i - di, j - dj) and dag.is_active(i - di, j - dj)
        )

    probes: List[Tuple[int, int]] = []
    # an interior cell sees the unclipped stencil; search near the centre
    ci, cj = h // 2, w // 2
    for i, j in [(ci, cj)] + [
        (ci + s, cj + t) for s in range(-2, 3) for t in range(-2, 3)
    ]:
        if (
            max_di <= i < h - max_di
            and max_dj <= j < w - max_dj
            and dag.is_active(i, j)
        ):
            probes.append((i, j))
            break
    if not probes:
        report.add(
            "DP106",
            "matrix too small for an interior probe; run enumeration "
            "(Dag.validate) to verify the overridden methods",
        )
    probes += [
        (i, j)
        for i, j in ((0, 0), (0, w - 1), (h - 1, 0), (h - 1, w - 1))
        if dag.is_active(i, j)
    ]

    for i, j in probes:
        actual_deps = [(v.i, v.j) for v in dag.get_dependency(i, j)]
        for vi, vj in actual_deps:
            if not dag.contains(vi, vj):
                report.add(
                    "DP102",
                    f"get_dependency({i}, {j}) lists out-of-bounds cell "
                    f"({vi}, {vj})",
                )
        if sorted(
            (vi, vj) for vi, vj in actual_deps if dag.contains(vi, vj)
            and dag.is_active(vi, vj)
        ) != predicted_deps(i, j):
            report.add(
                "DP103",
                f"get_dependency({i}, {j}) = {sorted(actual_deps)} does not "
                f"match the offset prediction {predicted_deps(i, j)}",
            )
        actual_anti = [(v.i, v.j) for v in dag.get_anti_dependency(i, j)]
        for vi, vj in actual_anti:
            if not dag.contains(vi, vj):
                report.add(
                    "DP102",
                    f"get_anti_dependency({i}, {j}) lists out-of-bounds cell "
                    f"({vi}, {vj})",
                )
        if sorted(
            (vi, vj) for vi, vj in actual_anti if dag.contains(vi, vj)
            and dag.is_active(vi, vj)
        ) != predicted_anti(i, j):
            report.add(
                "DP103",
                f"get_anti_dependency({i}, {j}) = {sorted(actual_anti)} is not "
                f"the inverse of the stencil: expected {predicted_anti(i, j)}",
            )


def verify_stencil(dag, metrics: bool = True, subject: str = "") -> AnalysisReport:
    """Symbolically verify a :class:`StencilDag`; O(#offsets) arithmetic.

    Proves acyclicity (ranking-vector existence), inverse consistency
    (by construction, or by probing when methods are overridden) and
    classifies boundary clipping; optionally derives wavefront metrics.
    """
    StencilDag = _base()
    name = getattr(type(dag), "pattern_name", type(dag).__name__)
    report = AnalysisReport(
        subject=subject or f"pattern:{name}", method="symbolic"
    )
    offsets = tuple(dag.offsets)
    if not verify_offsets(offsets, report):
        return report

    d = find_ranking_vector(offsets)
    if d is None:
        report.add(
            "DP101",
            f"offset set {sorted(offsets)} admits no wavefront ranking "
            "vector: the offsets do not fit in an open half-plane, so the "
            "stencil closes a dependency cycle",
        )
    elif metrics:
        _wavefront_metrics(dag, d, report)
    else:
        report.metrics["wavefront_vector"] = d

    overridden = (
        type(dag).get_dependency is not StencilDag.get_dependency
        or type(dag).get_anti_dependency is not StencilDag.get_anti_dependency
    )
    if overridden:
        _probe_cells(dag, report)
        report.metrics["inverse_consistency"] = "probed (methods overridden)"
    else:
        report.metrics["inverse_consistency"] = (
            "by construction (anti(o) = -o, shared bounds/activity predicate)"
        )
    return report


# -- enumeration fallback (irregular patterns) --------------------------------------
def enumerate_verify(
    dag, limit: Optional[int] = ENUMERATE_LIMIT, subject: str = ""
) -> AnalysisReport:
    """Exhaustive check emitting findings instead of raising.

    The same invariants as :meth:`Dag.validate`, reported as DP102 (bad
    dependencies), DP103 (inverse mismatch) and DP105 (Kahn stall). DAGs
    larger than ``limit`` cells get a DP106 note and are skipped.
    """
    name = getattr(type(dag), "pattern_name", type(dag).__name__)
    report = AnalysisReport(
        subject=subject or f"pattern:{name}", method="enumeration"
    )
    if limit is not None and dag.size > limit:
        report.add(
            "DP106",
            f"{dag.height}x{dag.width} = {dag.size} cells exceeds the "
            f"enumeration limit ({limit}); not exhaustively verified",
        )
        return report

    active = {(i, j) for i, j in dag.region if dag.is_active(i, j)}
    deps = {}
    for i, j in active:
        seen = set()
        for v in dag.get_dependency(i, j):
            c = (v.i, v.j)
            if not dag.contains(*c):
                report.add("DP102", f"dependency {c} of ({i}, {j}) is out of bounds")
                continue
            if c == (i, j):
                report.add("DP102", f"({i}, {j}) depends on itself")
                continue
            if c not in active:
                report.add("DP102", f"({i}, {j}) depends on inactive cell {c}")
                continue
            if c in seen:
                report.add("DP102", f"({i}, {j}) lists dependency {c} twice")
                continue
            seen.add(c)
        deps[(i, j)] = seen

    anti = {}
    for i, j in active:
        a_set = set()
        for v in dag.get_anti_dependency(i, j):
            c = (v.i, v.j)
            if not dag.contains(*c) or c not in active:
                report.add(
                    "DP102", f"anti-dependency {c} of ({i}, {j}) is invalid"
                )
                continue
            if c in a_set:
                report.add(
                    "DP102", f"({i}, {j}) lists anti-dependency {c} twice"
                )
                continue
            a_set.add(c)
        anti[(i, j)] = a_set

    mismatches = 0
    for v in active:
        for dcell in deps[v]:
            if v not in anti.get(dcell, ()):
                mismatches += 1
                if mismatches <= 5:
                    report.add(
                        "DP103",
                        f"edge {dcell} -> {v} is missing from "
                        f"get_anti_dependency{dcell}",
                    )
        for acell in anti[v]:
            if v not in deps.get(acell, ()):
                mismatches += 1
                if mismatches <= 5:
                    report.add(
                        "DP103",
                        f"get_anti_dependency{v} lists {acell}, but {acell} "
                        f"does not depend on {v}",
                    )
    if mismatches > 5:
        report.add(
            "DP103", f"... and {mismatches - 5} more inverse mismatches"
        )

    # schedulability via Kahn's algorithm over the *declared* relations
    indegree = {v: len(deps[v]) for v in active}
    ready = [v for v, k in indegree.items() if k == 0]
    done = 0
    while ready:
        v = ready.pop()
        done += 1
        for acell in anti[v]:
            indegree[acell] -= 1
            if indegree[acell] == 0:
                ready.append(acell)
    if done != len(active):
        report.add(
            "DP105",
            f"only {done} of {len(active)} vertices schedulable: the "
            "pattern has a cycle or an under-declared anti-dependency",
        )
    return report


def verify_pattern(
    dag,
    enumerate_limit: Optional[int] = ENUMERATE_LIMIT,
    metrics: bool = True,
    subject: str = "",
) -> AnalysisReport:
    """Verify any pattern: symbolic for stencils, enumeration otherwise."""
    StencilDag = _base()
    if isinstance(dag, StencilDag):
        return verify_stencil(dag, metrics=metrics, subject=subject)
    return enumerate_verify(dag, limit=enumerate_limit, subject=subject)


def try_symbolic_validate(dag) -> bool:
    """The fast path behind :meth:`Dag.validate`'s cell-count threshold.

    Returns ``True`` when the pattern qualifies for a *complete* symbolic
    proof — a :class:`StencilDag` whose dependency methods are not
    overridden (overriding ``is_active`` is fine: an induced subgraph of
    an acyclic graph stays acyclic and schedulable) and whose offsets fit
    inside the matrix. Raises :class:`PatternError` if the proof finds an
    error. Returns ``False`` when the pattern does not qualify, telling
    ``validate()`` to enumerate.
    """
    StencilDag = _base()
    if not isinstance(dag, StencilDag):
        return False
    if (
        type(dag).get_dependency is not StencilDag.get_dependency
        or type(dag).get_anti_dependency is not StencilDag.get_anti_dependency
    ):
        return False
    offsets = tuple(dag.offsets)
    if any(
        abs(di) >= dag.height or abs(dj) >= dag.width for di, dj in offsets
    ):
        # offsets larger than the matrix clip everywhere; enumeration is
        # both feasible (such DAGs are degenerate) and exact
        return False
    report = verify_stencil(dag, metrics=False)
    errors = [f for f in report if f.severity >= Severity.ERROR]
    if errors:
        raise PatternError(
            "symbolic verification failed: "
            + "; ".join(f"{f.code}: {f.message}" for f in errors)
        )
    return True
