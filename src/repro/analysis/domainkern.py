"""Domain-aware kernels: tensor hyperplane sweeps and tree level gathers.

The AST pipeline (lift → classify → emit) stops at ``compute()`` bodies
it can turn into IR. The PR 9 domain apps never get that far — their
recurrences loop over a ``deps`` dict keyed by native indices, which is
exactly the shape the lifter rejects (DP401) or the object store rules
out (DP402). But the *domains themselves* carry enough structure to
vectorize, if the app states its recurrence in a batched form:

``TENSOR_HYPERPLANE``
    A :class:`~repro.patterns.tensor.TensorWavefrontDag` app that
    defines ``offset_score(step, index) -> score`` declares its
    recurrence to be max-plus over the stencil::

        value(idx) = max over valid offsets o of
                     value(idx + o) + offset_score(-o, idx)

    (``step = -o`` is the positive per-axis advance; ``index`` may be a
    tuple of equal-length arrays, in which case the score must vectorize
    elementwise). Cells with no in-bounds dependency are *seeds* and are
    computed by a scalar ``compute_index(idx, {})`` fixup. The claim is
    verified numerically against ``compute_index`` on sampled cells
    before the kernel is trusted (:func:`probe_tensor_hyperplane`).

``TREE_LEVEL_GATHER``
    A :class:`~repro.patterns.tree.TreeDag` app that defines
    ``compute_level(nodes, ptr, child_values) -> values`` computes one
    whole height level per call: ``nodes`` is an int64 array of node
    ids, ``child_values`` the children's values flattened in node order,
    and ``ptr`` the CSR-style offsets (``child_values[ptr[k]:ptr[k+1]]``
    belongs to ``nodes[k]``). The batched form is verified against a
    serial ``compute_index`` replay of a post-order prefix before the
    kernel is trusted (:func:`probe_tree_level`).

Both kernels are probed once at build time; a failed probe raises
:class:`DomainKernelError` and the classifier demotes to OPAQUE with a
DP403 naming the mismatch, so a buggy batched method can never silently
diverge from the interpreted oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "DomainKernelError",
    "TensorHyperplaneKernel",
    "TreeLevelKernel",
    "match_domain_class",
    "probe_tensor_hyperplane",
    "probe_tree_level",
]


class DomainKernelError(Exception):
    """A domain kernel probe or build failed; demote to OPAQUE."""


def _values_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return bool(np.array_equal(np.asarray(a), np.asarray(b)))
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(_values_equal(x, y) for x, y in zip(a, b))
    return bool(a == b)


def match_domain_class(app, dag) -> Optional[str]:
    """The domain class this app/dag pair opts into, or None."""
    from repro.core.domain import DomainApp

    if not isinstance(app, DomainApp):
        return None
    from repro.patterns.tensor import TensorWavefrontDag
    from repro.patterns.tree import TreeDag

    if isinstance(dag, TensorWavefrontDag) and callable(
        getattr(type(app), "offset_score", None)
    ):
        return "TENSOR_HYPERPLANE"
    if isinstance(dag, TreeDag) and callable(
        getattr(type(app), "compute_level", None)
    ):
        return "TREE_LEVEL_GATHER"
    return None


# -- tensor hyperplane sweeps -----------------------------------------------------------


def probe_tensor_hyperplane(app, dag, samples: int = 48) -> None:
    """Verify ``compute_index == max(dep + offset_score)`` on real cells."""
    from .infer import sample_cells

    dom = dag.domain
    shape = dom.shape
    offsets = dag.offsets_nd
    checked = 0
    for i, j in sample_cells(dag, samples):
        idx = dom.from_cell(i, j)
        valid = [
            o
            for o in offsets
            if all(x + d >= 0 for x, d in zip(idx, o))
        ]
        if not valid:
            continue  # seed cell: the kernel calls compute_index directly
        for salt in (0, 1):
            deps = {}
            expected = None
            for k, o in enumerate(valid):
                nidx = tuple(x + d for x, d in zip(idx, o))
                val = (salt * 997 + 37 * k + 11) * (1 if k % 2 == salt else -1)
                deps[nidx] = val
                step = tuple(-d for d in o)
                cand = val + int(app.offset_score(step, idx))
                expected = cand if expected is None else max(expected, cand)
            got = app.compute_index(idx, deps)
            if got != expected:
                raise DomainKernelError(
                    f"offset_score disagrees with compute_index at {idx}:"
                    f" batched {expected}, interpreted {got}"
                )
        checked += 1
    if checked == 0:
        raise DomainKernelError(
            "no non-seed cells to probe the hyperplane recurrence on"
        )


#: per-process plan cache: hyperplane segmentation of a tile depends only
#: on the tensor shape and the tile box, so identical tiles across a run
#: (and across forked mp workers, via copy-on-write) share one plan
_TENSOR_PLAN_CACHE: Dict[Tuple, Tuple] = {}


class TensorHyperplaneKernel:
    """Window-mode tile kernel sweeping antidiagonal hyperplanes.

    Same ``compute_tile(r0, c0, window, oi, oj, h, w)`` contract as the
    2-D kernels: the tensor is already embedded in the layout grid, so
    the engines (inline, threaded, mp shm) need no special handling.
    """

    mode = "window"
    klass = "TENSOR_HYPERPLANE"

    def __init__(self, app, dag) -> None:
        self.app = app
        dom = dag.domain
        self.dom = dom
        self.shape = dom.shape
        self.strides = dom._row_strides
        self.offsets = dag.offsets_nd
        self.steps = tuple(tuple(-x for x in o) for o in self.offsets)
        # cell-space delta of each offset: exact for valid neighbors,
        # because the mixed-radix row encoding is linear when no axis
        # underflows — and underflowing lanes are masked out
        self.deltas = tuple(
            (
                sum(o[a] * s for a, s in zip(range(dom.ndim - 1), self.strides)),
                o[-1],
            )
            for o in self.offsets
        )
        pt = max(0, max(-dr for dr, _ in self.deltas))
        pl = max(0, max(-dc for _, dc in self.deltas))
        self.pads = (pt, 0, pl, 0)
        dtype = np.dtype(type(app).value_dtype)
        if dtype.kind in ("i", "u"):
            self._minv = int(np.iinfo(dtype).min // 4)
        else:
            self._minv = -np.inf

    def _plan(self, r0: int, c0: int, h: int, w: int):
        key = (self.shape, r0, c0, h, w)
        plan = _TENSOR_PLAN_CACHE.get(key)
        if plan is None:
            li_f = np.repeat(np.arange(h, dtype=np.int64), w)
            lj_f = np.tile(np.arange(w, dtype=np.int64), h)
            rows_g = r0 + li_f
            axes: List[np.ndarray] = []
            rem = rows_g
            for s in self.strides:
                axes.append(rem // s)
                rem = rem % s
            axes.append(c0 + lj_f)
            level = axes[0].copy()
            for ax in axes[1:]:
                level += ax
            order = np.argsort(level, kind="stable")
            lv = level[order]
            starts = np.flatnonzero(np.r_[True, lv[1:] != lv[:-1]])
            bounds = np.r_[starts, lv.size]
            segments = tuple(
                order[bounds[k]: bounds[k + 1]] for k in range(len(starts))
            )
            # per-offset validity over the whole tile (axis underflow)
            valids = tuple(
                np.logical_and.reduce(
                    [ax >= st for ax, st in zip(axes, step)]
                )
                for step in self.steps
            )
            plan = (li_f, lj_f, tuple(axes), segments, valids)
            _TENSOR_PLAN_CACHE[key] = plan
        return plan

    def __call__(self, r0, c0, window, oi, oj, h, w) -> bool:
        if h <= 0 or w <= 0:
            return True
        app = self.app
        li_f, lj_f, axes, segments, valids = self._plan(r0, c0, h, w)
        wh, ww = window.shape
        wi_f = oi + li_f
        wj_f = oj + lj_f
        minv = self._minv
        # per-offset edge weights over the whole tile (masked lanes may
        # index with wrapped negatives; their candidates are discarded)
        scores = [
            app.offset_score(step, axes) for step in self.steps
        ]
        for sel in segments:
            acc = np.full(sel.size, minv, dtype=window.dtype)
            any_valid = np.zeros(sel.size, dtype=bool)
            for k, (dr, dc) in enumerate(self.deltas):
                vmask = valids[k][sel]
                if not vmask.any():
                    continue
                nv = window[
                    np.clip(wi_f[sel] + dr, 0, wh - 1),
                    np.clip(wj_f[sel] + dc, 0, ww - 1),
                ]
                sc = scores[k]
                cand = nv + (sc[sel] if np.ndim(sc) else sc)
                acc = np.where(vmask, np.maximum(acc, cand), acc)
                any_valid |= vmask
            if not any_valid.all():
                # seed cells (no in-bounds dependency): scalar fixups
                for p in np.flatnonzero(~any_valid).tolist():
                    t = int(sel[p])
                    idx = tuple(int(ax[t]) for ax in axes)
                    acc[p] = app.compute_index(idx, {})
            window[wi_f[sel], wj_f[sel]] = acc
        return True

    @property
    def source(self) -> str:
        return (
            "# TENSOR_HYPERPLANE kernel (repro.analysis.domainkern)\n"
            f"# shape={self.shape} offsets={self.offsets}\n"
            "# per tile: decode axes, group cells into index-sum hyperplanes,\n"
            "# sweep levels ascending; per offset, one masked gather + \n"
            "# vectorized offset_score; seed cells fixed up via compute_index\n"
        )


# -- tree level gathers -----------------------------------------------------------------


def probe_tree_level(app, dag, limit: int = 256) -> None:
    """Verify ``compute_level`` against a serial ``compute_index`` replay.

    Replays a prefix of the post-order (a prefix is closed under
    descendants, so every child is available), then re-batches the same
    nodes by height and requires ``compute_level`` to reproduce every
    value exactly.
    """
    dom = dag.domain
    prefix = dom.post_order[: min(dom.n, limit)]
    serial: Dict[int, object] = {}
    for v in prefix:
        deps = {c: serial[c] for c in dom.children(v)}
        serial[v] = app.compute_index(v, deps)
    by_height: Dict[int, List[int]] = {}
    for v in prefix:
        by_height.setdefault(dom.height_of(v), []).append(v)
    for hgt in sorted(by_height):
        nodes = by_height[hgt]
        flat: List[object] = []
        ptr = [0]
        for v in nodes:
            flat.extend(serial[c] for c in dom.children(v))
            ptr.append(len(flat))
        out = app.compute_level(
            np.asarray(nodes, dtype=np.int64),
            np.asarray(ptr, dtype=np.int64),
            flat,
        )
        if len(out) != len(nodes):
            raise DomainKernelError(
                f"compute_level returned {len(out)} values for "
                f"{len(nodes)} nodes at height {hgt}"
            )
        for v, got in zip(nodes, out):
            if not _values_equal(got, serial[v]):
                raise DomainKernelError(
                    f"compute_level disagrees with compute_index at node "
                    f"{v}: batched {got!r}, serial {serial[v]!r}"
                )


class TreeLevelKernel:
    """Cells-mode kernel: one ``compute_level`` call per height level.

    Tree apps hold composite values in the object store, so there is no
    window plane to sweep; instead the tile worker hands the kernel its
    active cells and halo dict and gets back the values in cell order
    (``None`` return = fall back to the interpreted path).
    """

    mode = "cells"
    klass = "TREE_LEVEL_GATHER"
    pads = (0, 0, 0, 0)

    def __init__(self, app, dag) -> None:
        self.app = app
        self.dom = dag.domain

    def __call__(self, *args) -> bool:  # pragma: no cover - window contract
        return False  # never usable as a window kernel

    def run_cells(self, rows, cols, halo_values) -> Optional[List[object]]:
        dom = self.dom
        level = dom.level
        children = dom.children
        node_val: Dict[int, object] = {}
        try:
            for (hi, hj), v in halo_values.items():
                node_val[level(hi)[hj]] = v
            out: List[object] = [None] * len(rows)
            order = np.argsort(rows, kind="stable")
            rows_l = rows.tolist()
            cols_l = cols.tolist()
            pos = 0
            total = len(order)
            while pos < total:
                r = rows_l[order[pos]]
                end = pos
                while end < total and rows_l[order[end]] == r:
                    end += 1
                idxs = [int(order[t]) for t in range(pos, end)]
                lvl = level(r)
                nodes = [lvl[cols_l[t]] for t in idxs]
                flat: List[object] = []
                ptr = [0]
                for v in nodes:
                    flat.extend(node_val[c] for c in children(v))
                    ptr.append(len(flat))
                vals = self.app.compute_level(
                    np.asarray(nodes, dtype=np.int64),
                    np.asarray(ptr, dtype=np.int64),
                    flat,
                )
                for t, v, val in zip(idxs, nodes, vals):
                    node_val[v] = val
                    out[t] = val
                pos = end
            return out
        except KeyError:
            # a child value is neither in the halo nor in the tile —
            # stale metadata after recovery; the interpreted path is safe
            return None

    @property
    def source(self) -> str:
        return (
            "# TREE_LEVEL_GATHER kernel (repro.analysis.domainkern)\n"
            "# per tile: seed child values from the halo, walk height\n"
            "# levels ascending, one batched compute_level(nodes, ptr,\n"
            "# child_values) call per level\n"
        )
