"""AST lint for user ``compute()`` recurrences.

The DP analogue of a data race is ``compute(i, j, vertices)`` reading a
cell that ``get_dependency(i, j)`` never declared: the scheduler only
sequences declared edges, so an undeclared read observes a cell that may
or may not be finished depending on timing/distribution — correct on one
place, silently corrupt on eight. This pass walks the recurrence's AST
and flags:

* **DP201** — a dependency lookup (``dep[(i-1, j-1)]``, ``dep.get(...)``
  on the ``dependency_map`` dict, or a ``get_vertex`` call) whose offset
  resolves statically and is *not* in the pattern's declared offset set;
* **DP202** — nondeterminism sources (``random``, ``time``, ``uuid``,
  ``secrets``, ``numpy.random``, ``hash()``/``id()``) that make the
  recurrence timing- or process-dependent;
* **DP203** — mutation of global or shared state (``global``/``nonlocal``
  statements, writes through module-level names, writes to ``self``):
  ``compute()`` runs concurrently on worker threads, so shared writes are
  ordering-dependent;
* **DP204** — data-dependent dependency indices (e.g. Knapsack's
  ``dep[(i-1, j-w)]``) that static analysis cannot resolve; the runtime
  sanitizer (``DPX10Config(sanitize=True)``) covers these;
* **DP205** — a result-view read (``get_vertex``) whose index cannot be
  resolved at all.
* **DP206** — a hand-written ``compute_tile`` kernel whose ``window``
  indexing escapes the declared tile box: reads displaced beyond the
  stencil halo, or writes displaced off the tile cells. Such a kernel
  reads neighbours the engine never fetched (they silently read as
  zero) or clobbers halo cells another tile owns.

Reads through the ``vertices`` parameter itself (the Figure-7
coordinate-scan style) are declared by construction and never flagged.

DP204 notes are *footprint-refined* when :func:`lint_app` gets an app
instance and a live dag: the IR front-end (:mod:`repro.analysis.infer`)
resolves affine data-dependent indices like Knapsack's
``dep[(i-1, j - self.weights[i-1])]`` and probes them against the
declared stencil on sampled cells — resolved-and-clean lookups drop
their DP204 note, a probed contradiction escalates to DP404, and only
truly unresolvable indices keep the note.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, make_finding

__all__ = ["lint_compute", "lint_compute_tile", "lint_app"]

Offset = Tuple[int, int]

#: module roots whose calls make a recurrence nondeterministic
_NONDET_ROOTS = {"random", "secrets", "uuid", "time", "datetime"}
#: attribute names that mark nondeterminism under any root (np.random...)
_NONDET_ATTRS = {"random", "urandom", "perf_counter", "time", "now"}
#: builtins whose results vary across processes/runs
_NONDET_BUILTINS = {"hash", "id"}


def _attr_chain(node: ast.AST) -> List[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; empty when not a name chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _const_int(node: ast.AST) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_int(node.operand)
        return -inner if inner is not None else None
    return None


def _linear(node: ast.AST, var: str) -> Optional[int]:
    """Resolve ``node`` as ``var + c``; return ``c`` or ``None``.

    Handles ``i``, ``i + 1``, ``i - 2``, ``1 + i`` and parenthesised
    combinations thereof. Anything else (other names, calls, data-
    dependent arithmetic) is unresolvable.
    """
    if isinstance(node, ast.Name):
        return 0 if node.id == var else None
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        sign = 1 if isinstance(node.op, ast.Add) else -1
        left_c = _const_int(node.right)
        if left_c is not None:
            base = _linear(node.left, var)
            if base is not None:
                return base + sign * left_c
        if isinstance(node.op, ast.Add):
            right_c = _const_int(node.left)
            if right_c is not None:
                base = _linear(node.right, var)
                if base is not None:
                    return base + right_c
    return None


class _ComputeLinter(ast.NodeVisitor):
    def __init__(
        self,
        fn: ast.FunctionDef,
        subject: str,
        filename: str,
        base_line: int,
        offsets: Optional[Set[Offset]],
    ) -> None:
        self.subject = subject
        self.filename = filename
        self.base_line = base_line
        self.offsets = offsets
        self.findings: List[Finding] = []
        args = fn.args
        params = [a.arg for a in args.posonlyargs + args.args]
        if params and params[0] == "self":
            params = params[1:]
        # compute(i, j, vertices): the two index parameters and the
        # dependency rail, whatever the app chose to call them
        self.pi = params[0] if len(params) > 0 else "i"
        self.pj = params[1] if len(params) > 1 else "j"
        self.vertices = params[2] if len(params) > 2 else "vertices"
        self.dep_vars: Set[str] = set()

    # -- helpers ------------------------------------------------------------------
    def _loc(self, node: ast.AST) -> str:
        return f"{self.filename}:{self.base_line + node.lineno - 1}"

    def _add(self, code: str, message: str, node: ast.AST, severity=None) -> None:
        self.findings.append(
            make_finding(code, message, self.subject, self._loc(node), severity)
        )

    def _resolve_key(self, key: ast.AST) -> Tuple[Optional[Offset], str]:
        """Resolve a ``(i-1, j)`` style key to an offset, or explain why not."""
        if not (isinstance(key, ast.Tuple) and len(key.elts) == 2):
            return None, "index is not a 2-tuple"
        ci = _linear(key.elts[0], self.pi)
        cj = _linear(key.elts[1], self.pj)
        if ci is None or cj is None:
            return None, "data-dependent index"
        return (ci, cj), ""

    def _check_offset(self, offset: Offset, node: ast.AST, what: str) -> None:
        if self.offsets is None:
            return
        if offset not in self.offsets:
            di, dj = offset
            self._add(
                "DP201",
                f"compute() reads ({self.pi}{di:+d}, {self.pj}{dj:+d}) via "
                f"{what}, but the pattern declares only offsets "
                f"{sorted(self.offsets)} — an undeclared-dependency race",
                node,
            )

    def _note_dynamic(self, node: ast.AST, what: str) -> None:
        self._add(
            "DP204",
            f"{what} uses a data-dependent index that static analysis "
            "cannot resolve; run with DPX10Config(sanitize=True) to check "
            "it dynamically",
            node,
        )

    # -- visitors ----------------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        # track `dep = dependency_map(vertices)` bindings
        value = node.value
        if (
            isinstance(value, ast.Call)
            and (
                (isinstance(value.func, ast.Name) and value.func.id == "dependency_map")
                or (
                    isinstance(value.func, ast.Attribute)
                    and value.func.attr == "dependency_map"
                )
            )
            and value.args
            and isinstance(value.args[0], ast.Name)
            and value.args[0].id == self.vertices
        ):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    self.dep_vars.add(t.id)
        self._check_shared_write(node.targets, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_shared_write([node.target], node)
        self.generic_visit(node)

    def _check_shared_write(self, targets: Sequence[ast.AST], node: ast.AST) -> None:
        for t in targets:
            root = t
            via = None
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                via = root
                root = root.value
            if via is None:
                continue  # plain local rebinding
            chain = _attr_chain(root) or (
                [root.id] if isinstance(root, ast.Name) else []
            )
            if chain and chain[0] == "self":
                self._add(
                    "DP203",
                    "compute() writes to shared app state "
                    f"(self.{'.'.join(chain[1:] + [getattr(via, 'attr', '[...]')]).strip('.')}); "
                    "workers run compute() concurrently, so the result can "
                    "depend on execution order",
                    node,
                )
            elif chain and chain[0] not in self.locals_seen:
                self._add(
                    "DP203",
                    f"compute() mutates non-local state through "
                    f"{chain[0]!r}; shared writes are ordering-dependent",
                    node,
                )

    def visit_Global(self, node: ast.Global) -> None:
        self._add(
            "DP203",
            f"compute() declares global {', '.join(node.names)}; global "
            "mutation from a concurrent recurrence is a data race",
            node,
            severity=None,
        )

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._add(
            "DP203",
            f"compute() declares nonlocal {', '.join(node.names)}; shared "
            "closure mutation from a concurrent recurrence is a data race",
            node,
        )

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in self.dep_vars
            and isinstance(node.ctx, ast.Load)
        ):
            offset, why = self._resolve_key(node.slice)
            if offset is not None:
                self._check_offset(offset, node, "a dependency-map lookup")
            elif why == "data-dependent index":
                self._note_dynamic(node, "a dependency-map lookup")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # dep.get((i-1, j), default)
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "get"
            and isinstance(func.value, ast.Name)
            and func.value.id in self.dep_vars
            and node.args
        ):
            offset, why = self._resolve_key(node.args[0])
            if offset is not None:
                self._check_offset(offset, node, "a dependency-map lookup")
            elif why == "data-dependent index":
                self._note_dynamic(node, "a dependency-map lookup")
        # anything.get_vertex(i', j'): a result-view read inside compute()
        elif isinstance(func, ast.Attribute) and func.attr == "get_vertex":
            if len(node.args) == 2:
                ci = _linear(node.args[0], self.pi)
                cj = _linear(node.args[1], self.pj)
                if ci is not None and cj is not None:
                    self._check_offset((ci, cj), node, "a get_vertex() call")
                    if self.offsets is None:
                        self._add(
                            "DP205",
                            "compute() reads the DAG result view via "
                            "get_vertex(); such reads bypass the declared "
                            "dependency list and are only safe for "
                            "transitively-finished cells",
                            node,
                        )
                else:
                    self._add(
                        "DP205",
                        "compute() calls get_vertex() with an index the "
                        "linter cannot resolve; reads outside the declared "
                        "dependency list race with the scheduler",
                        node,
                    )
        # nondeterminism sources
        chain = _attr_chain(func)
        if chain:
            root = chain[0]
            if root in _NONDET_ROOTS or (
                len(chain) > 1 and set(chain[1:]) & _NONDET_ATTRS
            ):
                self._add(
                    "DP202",
                    f"compute() calls {'.'.join(chain)}(); "
                    "nondeterministic recurrences break recomputation-"
                    "based fault recovery (recovered cells may differ)",
                    node,
                )
            elif len(chain) == 1 and root in _NONDET_BUILTINS:
                self._add(
                    "DP202",
                    f"compute() calls {root}(); its value varies across "
                    "processes (PYTHONHASHSEED / address reuse), making "
                    "recomputation nondeterministic",
                    node,
                )
        self.generic_visit(node)

    # locals tracking (for the module-level-mutation check)
    def collect_locals(self, fn: ast.FunctionDef) -> None:
        names: Set[str] = {"self", self.pi, self.pj, self.vertices}
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                names.add(sub.id)
            elif isinstance(sub, (ast.For, ast.comprehension)):
                tgt = sub.target
                for n in ast.walk(tgt):
                    if isinstance(n, ast.Name):
                        names.add(n.id)
            elif isinstance(sub, ast.FunctionDef) and sub is not fn:
                names.add(sub.name)
        self.locals_seen = names


def lint_compute(
    compute_fn,
    offsets: Optional[Sequence[Offset]] = None,
    subject: str = "",
) -> List[Finding]:
    """Lint one ``compute`` function/method; returns its findings.

    ``offsets`` is the pattern's declared stencil (``None`` for
    non-stencil patterns: offset checks are skipped, dynamic-index and
    nondeterminism checks still run).
    """
    try:
        source = inspect.getsource(compute_fn)
        filename = inspect.getsourcefile(compute_fn) or "<unknown>"
        base_line = inspect.getsourcelines(compute_fn)[1]
    except (OSError, TypeError):
        return [
            make_finding(
                "DP106",
                "compute() source is unavailable; cannot lint",
                subject,
            )
        ]
    tree = ast.parse(textwrap.dedent(source))
    fn = next(
        (n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)), None
    )
    if fn is None:  # pragma: no cover - getsource always yields a def
        return []
    import os

    linter = _ComputeLinter(
        fn,
        subject,
        os.path.basename(filename),
        base_line,
        set(offsets) if offsets is not None else None,
    )
    linter.collect_locals(fn)
    linter.visit(fn)
    return linter.findings


class _TileLinter(ast.NodeVisitor):
    """DP206: ``window`` indexing escaping the declared tile box.

    Tracks *anchored* locals — expressions of the shape
    ``oi + <lane> + c`` / ``oj + <lane> + c`` (lane = the in-box index
    vector kernels build with ``np.arange``) — as ``(axis, c)`` pairs.
    A ``window[A, B]`` read then resolves to constant displacements
    ``(dr, dc)`` off the tile box, which must stay within the stencil
    halo ``-pt <= dr <= pb`` / ``-pl <= dc <= pr``; writes must hit the
    box itself (``dr == dc == 0``). Unresolvable indices are skipped:
    this lint proves escapes, not safety.
    """

    def __init__(
        self,
        fn: ast.FunctionDef,
        subject: str,
        filename: str,
        base_line: int,
        pads: Tuple[int, int, int, int],
    ) -> None:
        self.subject = subject
        self.filename = filename
        self.base_line = base_line
        self.pads = pads
        self.findings: List[Finding] = []
        args = fn.args
        params = [a.arg for a in args.posonlyargs + args.args]
        if params and params[0] == "self":
            params = params[1:]
        # compute_tile(r0, c0, window, oi, oj, h, w)
        defaults = ["r0", "c0", "window", "oi", "oj", "h", "w"]
        params = (params + defaults[len(params):])[:7]
        self.window = params[2]
        self.anchors = {params[3]: ("row", 0), params[4]: ("col", 0)}

    def _loc(self, node: ast.AST) -> str:
        return f"{self.filename}:{self.base_line + node.lineno - 1}"

    def _anchor(self, node: ast.AST):
        """Resolve ``node`` to ``(axis, displacement)`` or ``None``."""
        if isinstance(node, ast.Name):
            return self.anchors.get(node.id)
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            sign = 1 if isinstance(node.op, ast.Add) else -1
            left, right = self._anchor(node.left), self._anchor(node.right)
            if left is not None and right is not None:
                return None  # two anchors combined: not a box index
            rc, lc = _const_int(node.right), _const_int(node.left)
            if left is not None:
                if rc is not None:
                    return (left[0], left[1] + sign * rc)
                # anchor + lane keeps the anchor; anchor - lane could
                # land anywhere, so give up on it
                return left if sign == 1 else None
            if right is not None and sign == 1:
                return (right[0], right[1] + (lc or 0))
        return None

    def _track(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            anchor = self._anchor(value)
            if anchor is not None:
                self.anchors[target.id] = anchor
            else:
                self.anchors.pop(target.id, None)
        elif (
            isinstance(target, ast.Tuple)
            and isinstance(value, ast.Tuple)
            and len(target.elts) == len(value.elts)
        ):
            for t, v in zip(target.elts, value.elts):
                self._track(t, v)

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            self._track(t, node.value)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == self.window:
            key = node.slice
            if isinstance(key, ast.Tuple) and len(key.elts) == 2:
                row, col = (self._anchor(e) for e in key.elts)
                dr = row[1] if row is not None and row[0] == "row" else None
                dc = col[1] if col is not None and col[0] == "col" else None
                pt, pb, pl, pr = self.pads
                if isinstance(node.ctx, ast.Store):
                    if (dr is not None and dr != 0) or (
                        dc is not None and dc != 0
                    ):
                        self.findings.append(
                            make_finding(
                                "DP206",
                                "compute_tile writes window cells displaced "
                                f"({dr or 0:+d}, {dc or 0:+d}) off the tile "
                                "box; out-of-box writes clobber halo cells "
                                "another tile owns",
                                self.subject,
                                self._loc(node),
                            )
                        )
                else:
                    bad_r = dr is not None and not (-pt <= dr <= pb)
                    bad_c = dc is not None and not (-pl <= dc <= pr)
                    if bad_r or bad_c:
                        self.findings.append(
                            make_finding(
                                "DP206",
                                "compute_tile reads window cells displaced "
                                f"({dr or 0:+d}, {dc or 0:+d}) off the tile "
                                "box, beyond the declared stencil halo "
                                f"(pads {self.pads}); the engine never "
                                "fetches them, so they read as zero",
                                self.subject,
                                self._loc(node),
                            )
                        )
        self.generic_visit(node)


def lint_compute_tile(
    tile_fn,
    pads: Tuple[int, int, int, int],
    subject: str = "",
) -> List[Finding]:
    """Lint one hand-written ``compute_tile`` kernel for DP206.

    ``pads`` is the declared halo ``(pt, pb, pl, pr)`` derived from the
    pattern's stencil offsets (what the tiled engine actually fetches).
    """
    try:
        source = inspect.getsource(tile_fn)
        filename = inspect.getsourcefile(tile_fn) or "<unknown>"
        base_line = inspect.getsourcelines(tile_fn)[1]
    except (OSError, TypeError):
        return [
            make_finding(
                "DP106",
                "compute_tile source is unavailable; cannot lint",
                subject,
            )
        ]
    tree = ast.parse(textwrap.dedent(source))
    fn = next(
        (n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)), None
    )
    if fn is None:  # pragma: no cover - getsource always yields a def
        return []
    import os

    linter = _TileLinter(
        fn, subject, os.path.basename(filename), base_line, tuple(pads)
    )
    linter.visit(fn)
    return linter.findings


def _refine_dp204(
    findings: List[Finding], app, dag, subject: str
) -> List[Finding]:
    """Resolve DP204 notes through the IR footprint front-end.

    Affine data-dependent indices (``j - self.weights[i-1]``) resolve to
    :class:`~repro.analysis.infer.FootEntry` rows/cols and get probed
    against the declared stencil on sampled cells. All resolved and
    clean: the notes drop. A probed contradiction escalates to DP404.
    Lifting or extraction failure: the notes stand — truly unresolvable.
    """
    from repro.analysis.infer import footprint, probe_footprint
    from repro.analysis.ir import LiftError, lift_compute, normalize

    try:
        ir = normalize(lift_compute(type(app).compute))
        footprint(ir)
        problems = probe_footprint(ir, app, dag)
    except Exception:
        return findings
    refined = [f for f in findings if f.code != "DP204"]
    for p in problems:
        refined.append(make_finding("DP404", p, subject))
    return refined


def lint_app(app_or_cls, dag=None, subject: str = "") -> List[Finding]:
    """Lint an app class/instance against its DAG pattern.

    When ``dag`` is a :class:`StencilDag` (instance or class), its offset
    set becomes the declared-dependency reference for DP201 and its halo
    the tile-box reference for DP206 (hand-written ``compute_tile``
    overrides only). With an app *instance* and a dag instance, DP204
    notes are refined through footprint inference (see module docstring).
    """
    from repro.core.api import DPX10App
    from repro.patterns.base import StencilDag

    cls = app_or_cls if inspect.isclass(app_or_cls) else type(app_or_cls)
    offsets = None
    if dag is not None:
        dag_cls = dag if inspect.isclass(dag) else type(dag)
        if issubclass(dag_cls, StencilDag):
            offsets = tuple(dag_cls.offsets)
    if not subject:
        subject = f"app:{cls.__name__}"
    findings = lint_compute(cls.compute, offsets=offsets, subject=subject)
    if (
        any(f.code == "DP204" for f in findings)
        and not inspect.isclass(app_or_cls)
        and dag is not None
        and not inspect.isclass(dag)
    ):
        findings = _refine_dp204(findings, app_or_cls, dag, subject)
    if offsets is not None and cls.compute_tile is not DPX10App.compute_tile:
        pads = (
            max(0, max(-di for di, _ in offsets)),
            max(0, max(di for di, _ in offsets)),
            max(0, max(-dj for _, dj in offsets)),
            max(0, max(dj for _, dj in offsets)),
        )
        findings += lint_compute_tile(cls.compute_tile, pads, subject=subject)
    return findings
