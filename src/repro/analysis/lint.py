"""AST lint for user ``compute()`` recurrences.

The DP analogue of a data race is ``compute(i, j, vertices)`` reading a
cell that ``get_dependency(i, j)`` never declared: the scheduler only
sequences declared edges, so an undeclared read observes a cell that may
or may not be finished depending on timing/distribution — correct on one
place, silently corrupt on eight. This pass walks the recurrence's AST
and flags:

* **DP201** — a dependency lookup (``dep[(i-1, j-1)]``, ``dep.get(...)``
  on the ``dependency_map`` dict, or a ``get_vertex`` call) whose offset
  resolves statically and is *not* in the pattern's declared offset set;
* **DP202** — nondeterminism sources (``random``, ``time``, ``uuid``,
  ``secrets``, ``numpy.random``, ``hash()``/``id()``) that make the
  recurrence timing- or process-dependent;
* **DP203** — mutation of global or shared state (``global``/``nonlocal``
  statements, writes through module-level names, writes to ``self``):
  ``compute()`` runs concurrently on worker threads, so shared writes are
  ordering-dependent;
* **DP204** — data-dependent dependency indices (e.g. Knapsack's
  ``dep[(i-1, j-w)]``) that static analysis cannot resolve; the runtime
  sanitizer (``DPX10Config(sanitize=True)``) covers these;
* **DP205** — a result-view read (``get_vertex``) whose index cannot be
  resolved at all.

Reads through the ``vertices`` parameter itself (the Figure-7
coordinate-scan style) are declared by construction and never flagged.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, make_finding

__all__ = ["lint_compute", "lint_app"]

Offset = Tuple[int, int]

#: module roots whose calls make a recurrence nondeterministic
_NONDET_ROOTS = {"random", "secrets", "uuid", "time", "datetime"}
#: attribute names that mark nondeterminism under any root (np.random...)
_NONDET_ATTRS = {"random", "urandom", "perf_counter", "time", "now"}
#: builtins whose results vary across processes/runs
_NONDET_BUILTINS = {"hash", "id"}


def _attr_chain(node: ast.AST) -> List[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; empty when not a name chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _const_int(node: ast.AST) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_int(node.operand)
        return -inner if inner is not None else None
    return None


def _linear(node: ast.AST, var: str) -> Optional[int]:
    """Resolve ``node`` as ``var + c``; return ``c`` or ``None``.

    Handles ``i``, ``i + 1``, ``i - 2``, ``1 + i`` and parenthesised
    combinations thereof. Anything else (other names, calls, data-
    dependent arithmetic) is unresolvable.
    """
    if isinstance(node, ast.Name):
        return 0 if node.id == var else None
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        sign = 1 if isinstance(node.op, ast.Add) else -1
        left_c = _const_int(node.right)
        if left_c is not None:
            base = _linear(node.left, var)
            if base is not None:
                return base + sign * left_c
        if isinstance(node.op, ast.Add):
            right_c = _const_int(node.left)
            if right_c is not None:
                base = _linear(node.right, var)
                if base is not None:
                    return base + right_c
    return None


class _ComputeLinter(ast.NodeVisitor):
    def __init__(
        self,
        fn: ast.FunctionDef,
        subject: str,
        filename: str,
        base_line: int,
        offsets: Optional[Set[Offset]],
    ) -> None:
        self.subject = subject
        self.filename = filename
        self.base_line = base_line
        self.offsets = offsets
        self.findings: List[Finding] = []
        args = fn.args
        params = [a.arg for a in args.posonlyargs + args.args]
        if params and params[0] == "self":
            params = params[1:]
        # compute(i, j, vertices): the two index parameters and the
        # dependency rail, whatever the app chose to call them
        self.pi = params[0] if len(params) > 0 else "i"
        self.pj = params[1] if len(params) > 1 else "j"
        self.vertices = params[2] if len(params) > 2 else "vertices"
        self.dep_vars: Set[str] = set()

    # -- helpers ------------------------------------------------------------------
    def _loc(self, node: ast.AST) -> str:
        return f"{self.filename}:{self.base_line + node.lineno - 1}"

    def _add(self, code: str, message: str, node: ast.AST, severity=None) -> None:
        self.findings.append(
            make_finding(code, message, self.subject, self._loc(node), severity)
        )

    def _resolve_key(self, key: ast.AST) -> Tuple[Optional[Offset], str]:
        """Resolve a ``(i-1, j)`` style key to an offset, or explain why not."""
        if not (isinstance(key, ast.Tuple) and len(key.elts) == 2):
            return None, "index is not a 2-tuple"
        ci = _linear(key.elts[0], self.pi)
        cj = _linear(key.elts[1], self.pj)
        if ci is None or cj is None:
            return None, "data-dependent index"
        return (ci, cj), ""

    def _check_offset(self, offset: Offset, node: ast.AST, what: str) -> None:
        if self.offsets is None:
            return
        if offset not in self.offsets:
            di, dj = offset
            self._add(
                "DP201",
                f"compute() reads ({self.pi}{di:+d}, {self.pj}{dj:+d}) via "
                f"{what}, but the pattern declares only offsets "
                f"{sorted(self.offsets)} — an undeclared-dependency race",
                node,
            )

    def _note_dynamic(self, node: ast.AST, what: str) -> None:
        self._add(
            "DP204",
            f"{what} uses a data-dependent index that static analysis "
            "cannot resolve; run with DPX10Config(sanitize=True) to check "
            "it dynamically",
            node,
        )

    # -- visitors ----------------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        # track `dep = dependency_map(vertices)` bindings
        value = node.value
        if (
            isinstance(value, ast.Call)
            and (
                (isinstance(value.func, ast.Name) and value.func.id == "dependency_map")
                or (
                    isinstance(value.func, ast.Attribute)
                    and value.func.attr == "dependency_map"
                )
            )
            and value.args
            and isinstance(value.args[0], ast.Name)
            and value.args[0].id == self.vertices
        ):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    self.dep_vars.add(t.id)
        self._check_shared_write(node.targets, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_shared_write([node.target], node)
        self.generic_visit(node)

    def _check_shared_write(self, targets: Sequence[ast.AST], node: ast.AST) -> None:
        for t in targets:
            root = t
            via = None
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                via = root
                root = root.value
            if via is None:
                continue  # plain local rebinding
            chain = _attr_chain(root) or (
                [root.id] if isinstance(root, ast.Name) else []
            )
            if chain and chain[0] == "self":
                self._add(
                    "DP203",
                    "compute() writes to shared app state "
                    f"(self.{'.'.join(chain[1:] + [getattr(via, 'attr', '[...]')]).strip('.')}); "
                    "workers run compute() concurrently, so the result can "
                    "depend on execution order",
                    node,
                )
            elif chain and chain[0] not in self.locals_seen:
                self._add(
                    "DP203",
                    f"compute() mutates non-local state through "
                    f"{chain[0]!r}; shared writes are ordering-dependent",
                    node,
                )

    def visit_Global(self, node: ast.Global) -> None:
        self._add(
            "DP203",
            f"compute() declares global {', '.join(node.names)}; global "
            "mutation from a concurrent recurrence is a data race",
            node,
            severity=None,
        )

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._add(
            "DP203",
            f"compute() declares nonlocal {', '.join(node.names)}; shared "
            "closure mutation from a concurrent recurrence is a data race",
            node,
        )

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in self.dep_vars
            and isinstance(node.ctx, ast.Load)
        ):
            offset, why = self._resolve_key(node.slice)
            if offset is not None:
                self._check_offset(offset, node, "a dependency-map lookup")
            elif why == "data-dependent index":
                self._note_dynamic(node, "a dependency-map lookup")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # dep.get((i-1, j), default)
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "get"
            and isinstance(func.value, ast.Name)
            and func.value.id in self.dep_vars
            and node.args
        ):
            offset, why = self._resolve_key(node.args[0])
            if offset is not None:
                self._check_offset(offset, node, "a dependency-map lookup")
            elif why == "data-dependent index":
                self._note_dynamic(node, "a dependency-map lookup")
        # anything.get_vertex(i', j'): a result-view read inside compute()
        elif isinstance(func, ast.Attribute) and func.attr == "get_vertex":
            if len(node.args) == 2:
                ci = _linear(node.args[0], self.pi)
                cj = _linear(node.args[1], self.pj)
                if ci is not None and cj is not None:
                    self._check_offset((ci, cj), node, "a get_vertex() call")
                    if self.offsets is None:
                        self._add(
                            "DP205",
                            "compute() reads the DAG result view via "
                            "get_vertex(); such reads bypass the declared "
                            "dependency list and are only safe for "
                            "transitively-finished cells",
                            node,
                        )
                else:
                    self._add(
                        "DP205",
                        "compute() calls get_vertex() with an index the "
                        "linter cannot resolve; reads outside the declared "
                        "dependency list race with the scheduler",
                        node,
                    )
        # nondeterminism sources
        chain = _attr_chain(func)
        if chain:
            root = chain[0]
            if root in _NONDET_ROOTS or (
                len(chain) > 1 and set(chain[1:]) & _NONDET_ATTRS
            ):
                self._add(
                    "DP202",
                    f"compute() calls {'.'.join(chain)}(); "
                    "nondeterministic recurrences break recomputation-"
                    "based fault recovery (recovered cells may differ)",
                    node,
                )
            elif len(chain) == 1 and root in _NONDET_BUILTINS:
                self._add(
                    "DP202",
                    f"compute() calls {root}(); its value varies across "
                    "processes (PYTHONHASHSEED / address reuse), making "
                    "recomputation nondeterministic",
                    node,
                )
        self.generic_visit(node)

    # locals tracking (for the module-level-mutation check)
    def collect_locals(self, fn: ast.FunctionDef) -> None:
        names: Set[str] = {"self", self.pi, self.pj, self.vertices}
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                names.add(sub.id)
            elif isinstance(sub, (ast.For, ast.comprehension)):
                tgt = sub.target
                for n in ast.walk(tgt):
                    if isinstance(n, ast.Name):
                        names.add(n.id)
            elif isinstance(sub, ast.FunctionDef) and sub is not fn:
                names.add(sub.name)
        self.locals_seen = names


def lint_compute(
    compute_fn,
    offsets: Optional[Sequence[Offset]] = None,
    subject: str = "",
) -> List[Finding]:
    """Lint one ``compute`` function/method; returns its findings.

    ``offsets`` is the pattern's declared stencil (``None`` for
    non-stencil patterns: offset checks are skipped, dynamic-index and
    nondeterminism checks still run).
    """
    try:
        source = inspect.getsource(compute_fn)
        filename = inspect.getsourcefile(compute_fn) or "<unknown>"
        base_line = inspect.getsourcelines(compute_fn)[1]
    except (OSError, TypeError):
        return [
            make_finding(
                "DP106",
                "compute() source is unavailable; cannot lint",
                subject,
            )
        ]
    tree = ast.parse(textwrap.dedent(source))
    fn = next(
        (n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)), None
    )
    if fn is None:  # pragma: no cover - getsource always yields a def
        return []
    import os

    linter = _ComputeLinter(
        fn,
        subject,
        os.path.basename(filename),
        base_line,
        set(offsets) if offsets is not None else None,
    )
    linter.collect_locals(fn)
    linter.visit(fn)
    return linter.findings


def lint_app(app_or_cls, dag=None, subject: str = "") -> List[Finding]:
    """Lint an app class/instance against its DAG pattern.

    When ``dag`` is a :class:`StencilDag` (instance or class), its offset
    set becomes the declared-dependency reference for DP201.
    """
    from repro.patterns.base import StencilDag

    cls = app_or_cls if inspect.isclass(app_or_cls) else type(app_or_cls)
    offsets = None
    if dag is not None:
        dag_cls = dag if inspect.isclass(dag) else type(dag)
        if issubclass(dag_cls, StencilDag):
            offsets = tuple(dag_cls.offsets)
    if not subject:
        subject = f"app:{cls.__name__}"
    return lint_compute(cls.compute, offsets=offsets, subject=subject)
