"""Vectorization-class assignment for ``compute()`` recurrences.

:func:`classify_app` runs the full front-end — effect analysis, IR
lifting, dtype inference, footprint extraction, numeric probing — and
assigns one of four classes:

* ``ELEMENTWISE`` — every dependency is in a strictly earlier row, so
  whole rows vectorize directly (Knapsack: ``(i-1, j)`` and
  ``(i-1, j - w_i)``).
* ``ANTIDIAG_WAVEFRONT`` — a ranking vector ``(a, b)`` with
  ``a*di + b*dj < 0`` for every offset orders cells along
  anti-diagonals (LCS, SW, NW, edit distance, banded, LPS, MTP).
* ``ROW_SCAN_PREFIX`` — one intra-row data-dependent read in the
  ``max(base, dep[(i, j - s)] + add)`` shape; rows vectorize with a
  strided ``np.maximum.accumulate`` prefix scan (unbounded knapsack).
* ``OPAQUE`` — everything else, with a DP4xx finding naming the exact
  demotion reason per line.

Demotion findings:

* DP401 — the body leaves the liftable subset (loops/comprehensions/
  foreign calls), so no IR exists;
* DP402 — ``value_dtype`` is ``None``: no typed plane to vectorize into;
* DP403 — lifted but not vectorizable (type conflict, non-affine index,
  unsupported dependency shape);
* DP404 — the inferred footprint contradicts the pattern's declared
  dependencies on real cells (an error: the interpreted path is racing);
* DP405 — effect analysis found mutation or nondeterminism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .findings import AnalysisReport
from .infer import (
    Effects,
    FootEntry,
    InferError,
    analyze_effects,
    eval_expr,
    footprint,
    infer_types,
    probe_footprint,
    sample_cells,
)
from .ir import (
    Bin,
    Call,
    Cmp,
    ComputeIR,
    Cond,
    Const,
    DepRead,
    Expr,
    Index,
    LiftError,
    lift_compute,
    normalize,
    walk_expr,
)

__all__ = [
    "CLASSES",
    "Classification",
    "RowScanForm",
    "classify_app",
]

CLASSES = ("ELEMENTWISE", "ANTIDIAG_WAVEFRONT", "ROW_SCAN_PREFIX", "OPAQUE")


@dataclass
class RowScanForm:
    """The matched ``max(base, dep[(i, j - stride)] + add)`` shape.

    ``stride``/``add`` are row-constant data expressions (no ``j``);
    ``guard`` is the recognised ``stride <= j`` feasibility test.
    """

    read: DepRead
    stride: Expr
    add: Expr
    base: Expr
    guard: Optional[Expr]


@dataclass
class Classification:
    """Everything the analyzer learned about one app."""

    subject: str
    klass: str
    report: AnalysisReport
    effects: Optional[Effects] = None
    ir: Optional[ComputeIR] = None
    entries: Tuple[FootEntry, ...] = ()
    rank: Optional[Tuple[int, int]] = None
    row_scan: Optional[RowScanForm] = None
    case_kinds: dict = field(default_factory=dict)

    @property
    def vectorizable(self) -> bool:
        return self.klass != "OPAQUE"


def _rank_for(offsets: List[Tuple[int, int]]) -> Optional[Tuple[int, int]]:
    """A ranking vector making every offset strictly backward, if any."""
    for rank in ((1, 0), (1, 1), (-1, 1)):
        a, b = rank
        if all(a * di + b * dj < 0 for di, dj in offsets):
            return rank
    return None


def _is_row_constant(e: Expr) -> bool:
    """True when the expression never mentions ``j`` or a dependency."""
    return all(
        not (isinstance(n, Index) and n.axis == "j") and not isinstance(n, DepRead)
        for n in walk_expr(e)
    )


def _match_row_scan(
    ir: ComputeIR, entry: FootEntry
) -> Optional[RowScanForm]:
    """Recognise the prefix-scan shape around an intra-row data read.

    The read must appear exactly once, inside a value of the form
    ``max(base, read + add)`` guarded by ``stride <= j`` (the guard may
    be the enclosing ``Cond`` test), where ``base`` is the no-take
    expression and ``add``/``stride`` are row-constant.
    """
    read = entry.read
    if read is None:
        return None
    holders = [
        (g, v)
        for g, v in ir.cases
        if any(n == read for n in walk_expr(v))
        or (g is not None and any(n == read for n in walk_expr(g)))
    ]
    if len(holders) != 1:
        return None
    guard, value = holders[0]
    if guard is not None and any(n == read for n in walk_expr(guard)):
        return None
    # peel a feasibility Cond: (take-form if stride <= j else base)
    cond_guard: Optional[Expr] = None
    if isinstance(value, Cond):
        cond_guard, take, base_alt = value.test, value.then, value.orelse
        if any(n == read for n in walk_expr(base_alt)) or any(
            n == read for n in walk_expr(cond_guard)
        ):
            return None
        value = take
    else:
        base_alt = None
    if not (isinstance(value, Call) and value.fn == "max" and len(value.args) == 2):
        return None
    with_read = [a for a in value.args if any(n == read for n in walk_expr(a))]
    without = [a for a in value.args if not any(n == read for n in walk_expr(a))]
    if len(with_read) != 1 or len(without) != 1:
        return None
    take, base = with_read[0], without[0]
    if base_alt is not None and base_alt != base:
        return None
    # take must be read + add (or bare read)
    if take == read:
        add: Expr = Const(0)
    elif isinstance(take, Bin) and take.op == "+":
        if take.left == read:
            add = take.right
        elif take.right == read:
            add = take.left
        else:
            return None
    else:
        return None
    if not _is_row_constant(add):
        return None
    # stride from the column affine: col = j - stride_term, const 0
    col = entry.col
    if col.const != 0 or len(col.terms) != 1 or col.terms[0][0] != -1:
        return None
    stride = col.terms[0][1]
    if not _is_row_constant(stride):
        return None
    # the guard (case- or cond-level) must be stride <= j / j >= stride
    feas = cond_guard if cond_guard is not None else guard
    if feas is not None:
        ok = (
            isinstance(feas, Cmp)
            and (
                (feas.op == "<=" and feas.left == stride and feas.right == Index("j"))
                or (
                    feas.op == ">="
                    and feas.left == Index("j")
                    and feas.right == stride
                )
            )
        )
        if not ok:
            return None
    return RowScanForm(read=read, stride=stride, add=add, base=base, guard=feas)


def classify_app(app, dag, subject: str = "") -> Classification:
    """Run the full analysis front-end over one app/dag pair."""
    subject = subject or type(app).__name__
    report = AnalysisReport(subject=subject)
    cls = Classification(subject=subject, klass="OPAQUE", report=report)

    compute = type(app).compute
    try:
        cls.effects = analyze_effects(compute)
    except (OSError, TypeError):
        cls.effects = None
    if cls.effects is not None and not cls.effects.pure:
        report.add("DP405", f"compute() is impure: {cls.effects.describe()}")
        return cls

    try:
        cls.ir = normalize(lift_compute(compute))
    except LiftError as exc:
        report.add(
            "DP401",
            f"compute() left the liftable subset: {exc.reason}",
            location=f"line {exc.lineno}" if exc.lineno else None,
        )
        return cls
    except (OSError, TypeError) as exc:
        report.add("DP401", f"compute() source unavailable: {exc}")
        return cls

    if type(app).value_dtype is None:
        report.add("DP402", "value_dtype is None: no typed value plane to vectorize")
        return cls

    try:
        cls.case_kinds = infer_types(cls.ir, type(app).value_dtype, app)
    except InferError as exc:
        report.add("DP403", f"dtype inference failed: {exc}")
        return cls

    try:
        entries = footprint(cls.ir)
    except InferError as exc:
        report.add("DP403", f"footprint extraction failed: {exc}")
        return cls
    cls.entries = tuple(entries)

    problems = probe_footprint(cls.ir, app, dag)
    if problems:
        for p in problems:
            report.add("DP404", p)
        return cls

    const_offs: List[Tuple[int, int]] = []
    data_entries: List[FootEntry] = []
    for entry in entries:
        off = entry.const_offset
        if off is not None:
            if off not in const_offs:
                const_offs.append(off)
        else:
            data_entries.append(entry)

    if not data_entries:
        rank = _rank_for(const_offs)
        if rank is None:
            report.add(
                "DP403", f"no ranking vector orders offsets {const_offs}"
            )
            return cls
        cls.rank = rank
        cls.klass = "ELEMENTWISE" if rank == (1, 0) else "ANTIDIAG_WAVEFRONT"
        return cls

    # data-dependent reads: strictly-earlier-row reads vectorize
    # elementwise; a single intra-row read may be a prefix scan
    if _rank_for(const_offs) != (1, 0):
        report.add(
            "DP403",
            "data-dependent reads mixed with non-elementwise constant"
            f" offsets {const_offs}",
        )
        return cls
    earlier_row = [
        e for e in data_entries if not e.row.terms and e.row.const < 0
    ]
    intra_row = [e for e in data_entries if not e.row.terms and e.row.const == 0]
    if len(earlier_row) + len(intra_row) != len(data_entries):
        report.add(
            "DP403", "a data-dependent read has a data-dependent row index"
        )
        return cls
    if not intra_row:
        cls.rank = (1, 0)
        cls.klass = "ELEMENTWISE"
        return cls
    if len(intra_row) > 1:
        report.add(
            "DP403",
            f"{len(intra_row)} intra-row data-dependent reads; the prefix"
            " scan handles exactly one",
        )
        return cls
    form = _match_row_scan(cls.ir, intra_row[0])
    if form is None:
        report.add(
            "DP403",
            "intra-row data-dependent read does not match the"
            " max(base, dep[(i, j - s)] + add) prefix-scan shape",
        )
        return cls
    # the scan stride must be positive on every sampled row
    for i, j in sample_cells(dag, 64):
        try:
            s = eval_expr(form.stride, i, j, app)
        except Exception:
            s = None
        if not isinstance(s, int) or s < 1:
            report.add(
                "DP403",
                f"prefix-scan stride {s!r} at row {i} is not a positive"
                " integer",
            )
            return cls
    cls.rank = (1, 0)
    cls.row_scan = form
    cls.klass = "ROW_SCAN_PREFIX"
    return cls
