"""Vectorization-class assignment for ``compute()`` recurrences.

:func:`classify_app` runs the full front-end — effect analysis, IR
lifting, dtype inference, footprint extraction, numeric probing — and
assigns one of four classes:

* ``ELEMENTWISE`` — every dependency is in a strictly earlier row, so
  whole rows vectorize directly (Knapsack: ``(i-1, j)`` and
  ``(i-1, j - w_i)``).
* ``ANTIDIAG_WAVEFRONT`` — a ranking vector ``(a, b)`` with
  ``a*di + b*dj < 0`` for every offset orders cells along
  anti-diagonals (LCS, SW, NW, edit distance, banded, LPS, MTP).
* ``ROW_SCAN_PREFIX`` — one intra-row data-dependent read in the
  ``max(base, dep[(i, j - s)] + add)`` shape; rows vectorize with a
  strided ``np.maximum.accumulate`` prefix scan (unbounded knapsack).
* ``OPAQUE`` — everything else, with a DP4xx finding naming the exact
  demotion reason per line.

Demotion findings:

* DP401 — the body leaves the liftable subset (loops/comprehensions/
  foreign calls), so no IR exists;
* DP402 — ``value_dtype`` is ``None``: no typed plane to vectorize into;
* DP403 — lifted but not vectorizable (type conflict, non-affine index,
  unsupported dependency shape);
* DP404 — the inferred footprint contradicts the pattern's declared
  dependencies on real cells (an error: the interpreted path is racing);
* DP405 — effect analysis found mutation or nondeterminism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .findings import AnalysisReport
from .infer import (
    Effects,
    FootEntry,
    InferError,
    analyze_effects,
    eval_expr,
    footprint,
    infer_types,
    probe_footprint,
    sample_cells,
)
from .ir import (
    Bin,
    Call,
    Cmp,
    ComputeIR,
    Cond,
    Const,
    DepRead,
    Expr,
    Index,
    LiftError,
    Reduce,
    lift_compute,
    normalize,
    walk_expr,
)

__all__ = [
    "CLASSES",
    "Classification",
    "RowScanForm",
    "classify_app",
]

CLASSES = (
    "ELEMENTWISE",
    "ANTIDIAG_WAVEFRONT",
    "ROW_SCAN_PREFIX",
    "TENSOR_HYPERPLANE",
    "TREE_LEVEL_GATHER",
    "OPAQUE",
)


@dataclass
class RowScanForm:
    """The matched ``max(base, dep[(i, j - stride)] + add)`` shape.

    ``stride`` is a row-constant data expression (no ``j``); ``guard``
    is the recognised ``stride <= j`` feasibility test. ``add`` is
    row-constant unless ``lane_add`` is set, in which case it may vary
    per lane (mention ``j``) and emission switches from the
    constant-slope prefix scan to the segment-sum form
    ``accumulate(base - cumsum(add)) + cumsum(add)``. ``pins`` names
    case indices (all guarded, dependency-free, earlier than the scan
    case) whose values must be pinned into the scan base so the
    recurrence chains *through* them — MTP's ``(0, 0) -> 0`` seed is
    the canonical example.
    """

    read: DepRead
    stride: Expr
    add: Expr
    base: Expr
    guard: Optional[Expr]
    lane_add: bool = False
    pins: Tuple[int, ...] = ()


@dataclass
class Classification:
    """Everything the analyzer learned about one app."""

    subject: str
    klass: str
    report: AnalysisReport
    effects: Optional[Effects] = None
    ir: Optional[ComputeIR] = None
    entries: Tuple[FootEntry, ...] = ()
    rank: Optional[Tuple[int, int]] = None
    row_scan: Optional[RowScanForm] = None
    case_kinds: dict = field(default_factory=dict)

    @property
    def vectorizable(self) -> bool:
        return self.klass != "OPAQUE"


def _rank_for(offsets: List[Tuple[int, int]]) -> Optional[Tuple[int, int]]:
    """A ranking vector making every offset strictly backward, if any."""
    for rank in ((1, 0), (1, 1), (-1, 1)):
        a, b = rank
        if all(a * di + b * dj < 0 for di, dj in offsets):
            return rank
    return None


def _is_row_constant(e: Expr) -> bool:
    """True when the expression never mentions ``j`` or a dependency."""
    return all(
        not (isinstance(n, Index) and n.axis == "j") and not isinstance(n, DepRead)
        for n in walk_expr(e)
    )


def _has_dep(e: Expr) -> bool:
    return any(isinstance(n, DepRead) for n in walk_expr(e))


def _mentions_j(e: Expr) -> bool:
    return any(
        isinstance(n, Index) and n.axis == "j" for n in walk_expr(e)
    )


def _guard_matches(feas: Expr, stride: Expr) -> bool:
    """Whether ``feas`` is a recognised ``j >= stride`` feasibility test."""
    if not isinstance(feas, Cmp):
        return False
    j = Index("j")
    if feas.op == "<=" and feas.left == stride and feas.right == j:
        return True
    if feas.op == ">=" and feas.left == j and feas.right == stride:
        return True
    # with a literal stride s, ``j > s - 1`` / ``s - 1 < j`` also works
    if isinstance(stride, Const) and isinstance(stride.value, int):
        below = Const(stride.value - 1)
        if feas.op == ">" and feas.left == j and feas.right == below:
            return True
        if feas.op == "<" and feas.left == below and feas.right == j:
            return True
    return False


def _split_take(take: Expr, read: DepRead) -> Optional[Expr]:
    """``add`` such that ``take == read + add``, or None."""
    if take == read:
        return Const(0)
    if isinstance(take, Bin) and take.op == "+":
        if take.left == read:
            return take.right
        if take.right == read:
            return take.left
    return None


def _scan_pins(
    ir: ComputeIR, scan_idx: int, stride_val: Optional[int], app, dag
) -> Optional[Tuple[int, ...]]:
    """Case indices safe to pin into the scan base; None = unsafe mix.

    A pinned case participates in the recurrence chain, so it must hold
    the *true* cell value wherever it fires: guarded, dependency-free,
    and earlier in the decision list than the scan case. A row-constant
    guard is always safe (the whole row is overridden after the scan
    anyway); a guard mentioning ``j`` is safe only if it never fires at
    ``j >= stride`` — verified by sampling — because a mid-row pin would
    let ``max(pin, chain)`` exceed the pinned truth and propagate.
    """
    pins = []
    for idx, (guard, value) in enumerate(ir.cases):
        if idx == scan_idx:
            continue
        if guard is None or idx > scan_idx:
            return None  # an unguarded or post-scan sibling: cannot pin
        if _has_dep(guard) or _has_dep(value):
            return None
        if _mentions_j(guard):
            if stride_val is None:
                return None
            for i, j in sample_cells(dag, 64):
                if j < stride_val:
                    continue
                try:
                    if bool(eval_expr(guard, i, j, app)):
                        return None
                except Exception:
                    return None
        pins.append(idx)
    return tuple(pins)


def _match_row_scan_const(
    ir: ComputeIR, entry: FootEntry, app, dag
) -> Optional[RowScanForm]:
    """Row-scan recognition for a constant intra-row offset ``(0, -s)``.

    Handles both the 2-arg ``max(base, read + add)`` shape and the
    guarded-``Reduce`` shape MTP lifts to::

        Reduce max { (i > 0) => dep[(i-1, j)] + down,
                     (j > 0) => dep[(i, j-1)] + right }

    where the read's guard is the feasibility test, the remaining items
    form the base, and ``add`` may vary along the row (``lane_add``).
    Every other case must be guarded and dependency-free so it can be
    pinned into the base (see :class:`RowScanForm`).
    """
    read = entry.read
    if read is None:
        return None
    s = -entry.col.const
    stride = Const(s)
    holders = [
        (idx, g, v)
        for idx, (g, v) in enumerate(ir.cases)
        if any(n == read for n in walk_expr(v))
        or (g is not None and any(n == read for n in walk_expr(g)))
    ]
    if len(holders) != 1:
        return None
    scan_idx, guard, value = holders[0]
    if guard is not None and any(n == read for n in walk_expr(guard)):
        return None

    feas: Optional[Expr] = None
    base: Optional[Expr] = None
    take: Optional[Expr] = None
    if isinstance(value, Reduce) and value.fn == "max":
        with_read = [
            (g, x)
            for g, x in value.items
            if any(n == read for n in walk_expr(x))
        ]
        rest = [
            (g, x)
            for g, x in value.items
            if not any(n == read for n in walk_expr(x))
        ]
        if len(with_read) != 1 or not rest:
            return None
        feas, take = with_read[0]
        if feas is None or _has_dep(feas) or not _guard_matches(feas, stride):
            return None
        base = Reduce("max", tuple(rest))
    else:
        # Cond peel + 2-arg max, as in the data-dependent matcher
        cond_guard: Optional[Expr] = None
        if isinstance(value, Cond):
            cond_guard, inner, base_alt = value.test, value.then, value.orelse
            if any(n == read for n in walk_expr(base_alt)) or any(
                n == read for n in walk_expr(cond_guard)
            ):
                return None
            value = inner
        else:
            base_alt = None
        if not (
            isinstance(value, Call) and value.fn == "max" and len(value.args) == 2
        ):
            return None
        with_r = [a for a in value.args if any(n == read for n in walk_expr(a))]
        without = [a for a in value.args if not any(n == read for n in walk_expr(a))]
        if len(with_r) != 1 or len(without) != 1:
            return None
        take, base = with_r[0], without[0]
        if base_alt is not None and base_alt != base:
            return None
        feas = cond_guard if cond_guard is not None else guard
        if feas is not None and not _guard_matches(feas, stride):
            return None

    add = _split_take(take, read)
    if add is None or _has_dep(add):
        return None
    # base may read strictly-earlier rows (the caller verified every
    # sibling offset has di < 0): those gathers are plain window reads
    # in the row loop, already computed by the time the row scans
    pins = _scan_pins(ir, scan_idx, s, app, dag)
    if pins is None:
        return None
    return RowScanForm(
        read=read,
        stride=stride,
        add=add,
        base=base,
        guard=feas,
        lane_add=not _is_row_constant(add),
        pins=pins,
    )


def _dag_fully_active(dag) -> bool:
    try:
        from repro.core.dag import Dag

        return type(dag).is_active is Dag.is_active
    except Exception:  # pragma: no cover - core always importable at runtime
        return True


def _try_const_row_scan(
    ir: ComputeIR, entries: Tuple[FootEntry, ...], app, dag
) -> Optional[RowScanForm]:
    """Attempt the constant-stride prefix scan before settling on ANTIDIAG.

    Requires exactly one intra-row read at ``(0, -s)`` whose siblings
    are all strictly-earlier-row offsets — MTP's shape. SW/LCS-style
    recurrences fall through (their other cases carry reads, or the
    value is a wider ``max``), keeping the antidiagonal flat sweep in
    charge there.
    """
    if not _dag_fully_active(dag):
        return None  # the scan emission requires fully active rows
    intra = []
    for e in entries:
        off = e.const_offset
        if off is None:
            return None
        di, dj = off
        if di == 0 and dj < 0 and e.read is not None:
            intra.append(e)
        elif di >= 0:
            return None  # not strictly earlier-row: no scan shape
    if len(intra) != 1:
        return None
    return _match_row_scan_const(ir, intra[0], app, dag)


def _match_row_scan(
    ir: ComputeIR, entry: FootEntry
) -> Optional[RowScanForm]:
    """Recognise the prefix-scan shape around an intra-row data read.

    The read must appear exactly once, inside a value of the form
    ``max(base, read + add)`` guarded by ``stride <= j`` (the guard may
    be the enclosing ``Cond`` test), where ``base`` is the no-take
    expression and ``add``/``stride`` are row-constant.
    """
    read = entry.read
    if read is None:
        return None
    holders = [
        (g, v)
        for g, v in ir.cases
        if any(n == read for n in walk_expr(v))
        or (g is not None and any(n == read for n in walk_expr(g)))
    ]
    if len(holders) != 1:
        return None
    guard, value = holders[0]
    if guard is not None and any(n == read for n in walk_expr(guard)):
        return None
    # peel a feasibility Cond: (take-form if stride <= j else base)
    cond_guard: Optional[Expr] = None
    if isinstance(value, Cond):
        cond_guard, take, base_alt = value.test, value.then, value.orelse
        if any(n == read for n in walk_expr(base_alt)) or any(
            n == read for n in walk_expr(cond_guard)
        ):
            return None
        value = take
    else:
        base_alt = None
    if not (isinstance(value, Call) and value.fn == "max" and len(value.args) == 2):
        return None
    with_read = [a for a in value.args if any(n == read for n in walk_expr(a))]
    without = [a for a in value.args if not any(n == read for n in walk_expr(a))]
    if len(with_read) != 1 or len(without) != 1:
        return None
    take, base = with_read[0], without[0]
    if base_alt is not None and base_alt != base:
        return None
    # take must be read + add (or bare read)
    if take == read:
        add: Expr = Const(0)
    elif isinstance(take, Bin) and take.op == "+":
        if take.left == read:
            add = take.right
        elif take.right == read:
            add = take.left
        else:
            return None
    else:
        return None
    if not _is_row_constant(add):
        return None
    # stride from the column affine: col = j - stride_term, const 0
    col = entry.col
    if col.const != 0 or len(col.terms) != 1 or col.terms[0][0] != -1:
        return None
    stride = col.terms[0][1]
    if not _is_row_constant(stride):
        return None
    # the guard (case- or cond-level) must be stride <= j / j >= stride
    feas = cond_guard if cond_guard is not None else guard
    if feas is not None:
        ok = (
            isinstance(feas, Cmp)
            and (
                (feas.op == "<=" and feas.left == stride and feas.right == Index("j"))
                or (
                    feas.op == ">="
                    and feas.left == Index("j")
                    and feas.right == stride
                )
            )
        )
        if not ok:
            return None
    scan_idx = next(
        idx
        for idx, (g, v) in enumerate(ir.cases)
        if any(n == read for n in walk_expr(v))
    )
    # pins are an optimisation here: when the sibling cases don't fit the
    # pinnable shape the emission simply falls back to the seed-only
    # chain, which is what this matcher always produced historically
    pins = _scan_pins(ir, scan_idx, None, None, None) or ()
    return RowScanForm(
        read=read, stride=stride, add=add, base=base, guard=feas, pins=pins
    )


def classify_app(app, dag, subject: str = "") -> Classification:
    """Run the full analysis front-end over one app/dag pair."""
    subject = subject or type(app).__name__
    report = AnalysisReport(subject=subject)
    cls = Classification(subject=subject, klass="OPAQUE", report=report)

    # domain-declared batched recurrences short-circuit the AST pipeline:
    # their compute() is the generic DomainApp decoder (unliftable by
    # construction), but the batched form is probed numerically instead
    from .domainkern import (
        DomainKernelError,
        match_domain_class,
        probe_tensor_hyperplane,
        probe_tree_level,
    )

    domain_klass = match_domain_class(app, dag)
    if domain_klass is not None:
        try:
            if domain_klass == "TENSOR_HYPERPLANE":
                probe_tensor_hyperplane(app, dag)
            else:
                probe_tree_level(app, dag)
        except DomainKernelError as exc:
            report.add("DP403", f"domain kernel probe failed: {exc}")
            return cls
        cls.klass = domain_klass
        return cls

    compute = type(app).compute
    try:
        cls.effects = analyze_effects(compute)
    except (OSError, TypeError):
        cls.effects = None
    if cls.effects is not None and not cls.effects.pure:
        report.add("DP405", f"compute() is impure: {cls.effects.describe()}")
        return cls

    try:
        cls.ir = normalize(lift_compute(compute))
    except LiftError as exc:
        report.add(
            "DP401",
            f"compute() left the liftable subset: {exc.reason}",
            location=f"line {exc.lineno}" if exc.lineno else None,
        )
        return cls
    except (OSError, TypeError) as exc:
        report.add("DP401", f"compute() source unavailable: {exc}")
        return cls

    if type(app).value_dtype is None:
        report.add("DP402", "value_dtype is None: no typed value plane to vectorize")
        return cls

    try:
        cls.case_kinds = infer_types(cls.ir, type(app).value_dtype, app)
    except InferError as exc:
        report.add("DP403", f"dtype inference failed: {exc}")
        return cls

    try:
        entries = footprint(cls.ir)
    except InferError as exc:
        report.add("DP403", f"footprint extraction failed: {exc}")
        return cls
    cls.entries = tuple(entries)

    problems = probe_footprint(cls.ir, app, dag)
    if problems:
        for p in problems:
            report.add("DP404", p)
        return cls

    const_offs: List[Tuple[int, int]] = []
    data_entries: List[FootEntry] = []
    for entry in entries:
        off = entry.const_offset
        if off is not None:
            if off not in const_offs:
                const_offs.append(off)
        else:
            data_entries.append(entry)

    if not data_entries:
        rank = _rank_for(const_offs)
        if rank is None:
            report.add(
                "DP403", f"no ranking vector orders offsets {const_offs}"
            )
            return cls
        cls.rank = rank
        if rank == (1, 0):
            cls.klass = "ELEMENTWISE"
            return cls
        # a lone constant intra-row read may still be a prefix scan —
        # O(h) accumulate sweeps instead of O(h + w) antidiagonal levels
        form = _try_const_row_scan(cls.ir, cls.entries, app, dag)
        if form is not None:
            cls.rank = (1, 0)
            cls.row_scan = form
            cls.klass = "ROW_SCAN_PREFIX"
            return cls
        cls.klass = "ANTIDIAG_WAVEFRONT"
        return cls

    # data-dependent reads: strictly-earlier-row reads vectorize
    # elementwise; a single intra-row read may be a prefix scan
    if _rank_for(const_offs) != (1, 0):
        report.add(
            "DP403",
            "data-dependent reads mixed with non-elementwise constant"
            f" offsets {const_offs}",
        )
        return cls
    earlier_row = [
        e for e in data_entries if not e.row.terms and e.row.const < 0
    ]
    intra_row = [e for e in data_entries if not e.row.terms and e.row.const == 0]
    if len(earlier_row) + len(intra_row) != len(data_entries):
        report.add(
            "DP403", "a data-dependent read has a data-dependent row index"
        )
        return cls
    if not intra_row:
        cls.rank = (1, 0)
        cls.klass = "ELEMENTWISE"
        return cls
    if len(intra_row) > 1:
        report.add(
            "DP403",
            f"{len(intra_row)} intra-row data-dependent reads; the prefix"
            " scan handles exactly one",
        )
        return cls
    form = _match_row_scan(cls.ir, intra_row[0])
    if form is None:
        report.add(
            "DP403",
            "intra-row data-dependent read does not match the"
            " max(base, dep[(i, j - s)] + add) prefix-scan shape",
        )
        return cls
    # the scan stride must be positive on every sampled row
    for i, j in sample_cells(dag, 64):
        try:
            s = eval_expr(form.stride, i, j, app)
        except Exception:
            s = None
        if not isinstance(s, int) or s < 1:
            report.add(
                "DP403",
                f"prefix-scan stride {s!r} at row {i} is not a positive"
                " integer",
            )
            return cls
    cls.rank = (1, 0)
    cls.row_scan = form
    cls.klass = "ROW_SCAN_PREFIX"
    return cls
