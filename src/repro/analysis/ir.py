"""Typed dataflow IR for user ``compute()`` recurrences.

The AST lint (:mod:`repro.analysis.lint`) answers "does this read look
declared?"; this module answers the stronger question "what *is* this
recurrence?". :func:`lift_compute` symbolically executes the restricted
Python subset DP recurrences are written in — straight-line assignments,
``if``/``elif`` chains, ``dependency_map`` lookups, candidate lists with
guarded ``append``, numeric calls — and produces a :class:`ComputeIR`: a
decision list of ``(guard, value)`` cases over a small expression
language whose leaves are the cell indices, ``self`` data and dependency
reads.

Downstream passes run over the IR, never the AST:

* :mod:`repro.analysis.infer` — dtype inference, effect analysis and
  dependency-footprint extraction (affine index resolution);
* :mod:`repro.analysis.classify` — the vectorization-class verdict;
* :mod:`repro.analysis.codegen` — NumPy tile-kernel emission.

Anything outside the liftable subset (loops, comprehensions, foreign
calls, writes through ``self``) raises :class:`LiftError` with the
offending construct and line — surfaced as a DP401 finding, never a
crash.

Like the lint, this module is imported from ``repro.analysis.__init__``
territory and therefore must not import ``repro.core`` / ``repro.patterns``
/ ``repro.apps``: it is pure ``ast`` + dataclasses.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, fields
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "LiftError",
    "Expr",
    "Const",
    "Index",
    "SelfScalar",
    "SelfElem",
    "SelfElem2",
    "DepRead",
    "Present",
    "Bin",
    "Neg",
    "Cmp",
    "BoolE",
    "NotE",
    "Call",
    "Cond",
    "Reduce",
    "ComputeIR",
    "AffineIndex",
    "lift_compute",
    "lift_function",
    "normalize",
    "affine_of",
    "expr_to_str",
]

#: calls considered part of the whitelisted numeric core
NUMERIC_CALLS = ("max", "min", "abs", "int", "float")


class LiftError(Exception):
    """``compute()`` uses a construct outside the liftable subset."""

    def __init__(self, reason: str, lineno: Optional[int] = None) -> None:
        self.reason = reason
        self.lineno = lineno
        suffix = f" (line {lineno})" if lineno is not None else ""
        super().__init__(reason + suffix)


# -- expression nodes -----------------------------------------------------------------
@dataclass(frozen=True)
class Expr:
    """Base class for IR expressions (frozen: structural equality)."""


@dataclass(frozen=True)
class Const(Expr):
    value: object


@dataclass(frozen=True)
class Index(Expr):
    """One of the two cell coordinates; ``axis`` is ``"i"`` or ``"j"``."""

    axis: str


@dataclass(frozen=True)
class SelfScalar(Expr):
    """A plain ``self.<attr>`` load (run-constant app data)."""

    attr: str


@dataclass(frozen=True)
class SelfElem(Expr):
    """A 1-D ``self.<attr>[index]`` load (string, list, 1-D array)."""

    attr: str
    index: Expr


@dataclass(frozen=True)
class SelfElem2(Expr):
    """A 2-D ``self.<attr>[row, col]`` load."""

    attr: str
    row: Expr
    col: Expr


@dataclass(frozen=True)
class DepRead(Expr):
    """A dependency-map lookup: ``dep[(row, col)]`` / ``dep.get(..., default)``."""

    row: Expr
    col: Expr
    default: Optional[Expr] = None


@dataclass(frozen=True)
class Present(Expr):
    """True iff dependency ``(row, col)`` of the current cell exists.

    Produced when lifting the coordinate-scan idiom (``for vertex in
    vertices: if vertex.i == ... and vertex.j == ...``): the loop body
    only runs for dependencies that are in bounds, active and declared,
    which this guard encodes.
    """

    row: Expr
    col: Expr


@dataclass(frozen=True)
class Bin(Expr):
    op: str  # + - * // %
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Neg(Expr):
    operand: Expr


@dataclass(frozen=True)
class Cmp(Expr):
    op: str  # == != < <= > >=
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BoolE(Expr):
    op: str  # and / or
    parts: Tuple[Expr, ...]


@dataclass(frozen=True)
class NotE(Expr):
    operand: Expr


@dataclass(frozen=True)
class Call(Expr):
    fn: str  # one of NUMERIC_CALLS
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Cond(Expr):
    """``then if test else orelse`` — also the phi node for branch merges."""

    test: Expr
    then: Expr
    orelse: Expr


@dataclass(frozen=True)
class Reduce(Expr):
    """``max``/``min`` over guarded candidates (the candidates-list idiom).

    ``items`` holds ``(guard, expr)`` pairs; ``guard=None`` means the
    candidate is always present.
    """

    fn: str
    items: Tuple[Tuple[Optional[Expr], Expr], ...]


def walk_expr(e: Expr) -> Iterator[Expr]:
    """Yield ``e`` and every sub-expression, depth-first."""
    yield e
    for f in fields(e):
        v = getattr(e, f.name)
        if isinstance(v, Expr):
            yield from walk_expr(v)
        elif isinstance(v, tuple):
            for item in v:
                if isinstance(item, Expr):
                    yield from walk_expr(item)
                elif isinstance(item, tuple):  # Reduce items
                    for sub in item:
                        if isinstance(sub, Expr):
                            yield from walk_expr(sub)


# -- the lifted program ---------------------------------------------------------------
@dataclass
class ComputeIR:
    """A ``compute()`` body as a decision list of guarded value cases.

    Cases are tried in order; the first whose guard holds supplies the
    cell value (``guard=None`` always holds). The lifter only produces a
    terminating list — a recurrence that can fall off the end is a
    :class:`LiftError`.
    """

    cases: Tuple[Tuple[Optional[Expr], Expr], ...]
    pi: str = "i"
    pj: str = "j"

    def exprs(self) -> Iterator[Expr]:
        for guard, value in self.cases:
            if guard is not None:
                yield from walk_expr(guard)
            yield from walk_expr(value)

    def dep_reads(self) -> List[DepRead]:
        """Every dependency read, in deterministic program order."""
        seen: List[DepRead] = []
        for e in self.exprs():
            if isinstance(e, DepRead) and e not in seen:
                seen.append(e)
        return seen

    def pretty(self) -> str:
        """Stable textual form (golden-tested per built-in app)."""
        lines = [f"compute({self.pi}, {self.pj}):"]
        for guard, value in self.cases:
            head = "else" if guard is None else f"when {expr_to_str(guard)}"
            lines.append(f"  {head} -> {expr_to_str(value)}")
        return "\n".join(lines)


# -- rendering ------------------------------------------------------------------------
def expr_to_str(e: Expr) -> str:
    if isinstance(e, Const):
        return repr(e.value)
    if isinstance(e, Index):
        return e.axis
    if isinstance(e, SelfScalar):
        return f"self.{e.attr}"
    if isinstance(e, SelfElem):
        return f"self.{e.attr}[{expr_to_str(e.index)}]"
    if isinstance(e, SelfElem2):
        return f"self.{e.attr}[{expr_to_str(e.row)}, {expr_to_str(e.col)}]"
    if isinstance(e, DepRead):
        key = f"({expr_to_str(e.row)}, {expr_to_str(e.col)})"
        if e.default is None:
            return f"dep[{key}]"
        return f"dep.get({key}, {expr_to_str(e.default)})"
    if isinstance(e, Present):
        return f"present({expr_to_str(e.row)}, {expr_to_str(e.col)})"
    if isinstance(e, Bin):
        return f"({expr_to_str(e.left)} {e.op} {expr_to_str(e.right)})"
    if isinstance(e, Neg):
        return f"(-{expr_to_str(e.operand)})"
    if isinstance(e, Cmp):
        return f"({expr_to_str(e.left)} {e.op} {expr_to_str(e.right)})"
    if isinstance(e, BoolE):
        return "(" + f" {e.op} ".join(expr_to_str(p) for p in e.parts) + ")"
    if isinstance(e, NotE):
        return f"(not {expr_to_str(e.operand)})"
    if isinstance(e, Call):
        return f"{e.fn}({', '.join(expr_to_str(a) for a in e.args)})"
    if isinstance(e, Cond):
        return (
            f"({expr_to_str(e.then)} if {expr_to_str(e.test)}"
            f" else {expr_to_str(e.orelse)})"
        )
    if isinstance(e, Reduce):
        parts = [
            expr_to_str(x) if g is None else f"{expr_to_str(g)} => {expr_to_str(x)}"
            for g, x in e.items
        ]
        return f"{e.fn}{{{', '.join(parts)}}}"
    raise TypeError(f"unrenderable IR node {type(e).__name__}")  # pragma: no cover


# -- the lifter -----------------------------------------------------------------------
class _Poison:
    """A name defined on only one side of a branch merge; reading it fails."""

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Poison)

    def __hash__(self) -> int:  # pragma: no cover - not dict-keyed
        return hash("_Poison")


class _ListVal:
    """A lifted candidates list: guarded items accumulated by ``append``."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Tuple[Optional[Expr], Expr]] = ()) -> None:
        self.items = tuple(items)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ListVal) and self.items == other.items

    def __hash__(self) -> int:  # pragma: no cover - not dict-keyed
        return hash(self.items)


_CMP_OPS = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
}
_BIN_OPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.FloorDiv: "//",
    ast.Mod: "%",
}


def _conj(a: Expr, b: Optional[Expr]) -> Expr:
    return a if b is None else BoolE("and", (a, b))


class _Lifter:
    def __init__(self, fn: ast.FunctionDef, globals_ns: Dict[str, object]) -> None:
        args = fn.args
        params = [a.arg for a in args.posonlyargs + args.args]
        if params and params[0] == "self":
            params = params[1:]
        if len(params) < 3:
            raise LiftError(
                f"compute() has {len(params)} parameters, expected (i, j, vertices)",
                fn.lineno,
            )
        self.pi, self.pj, self.vertices = params[0], params[1], params[2]
        self.globals_ns = globals_ns
        self.dep_vars: set = set()
        # coordinate-scan context: (loop var name, row Expr, col Expr)
        self.scan_ctx: Optional[Tuple[str, Expr, Expr]] = None

    # -- expressions ------------------------------------------------------------------
    def lift_expr(self, node: ast.AST, env: Dict[str, object]) -> Expr:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float, bool, str)):
                return Const(node.value)
            raise LiftError(f"constant {node.value!r} is not liftable", node.lineno)
        if isinstance(node, ast.Name):
            name = node.id
            if name == self.pi:
                return Index("i")
            if name == self.pj:
                return Index("j")
            if name in self.dep_vars:
                raise LiftError("the dependency map is used as a value", node.lineno)
            if name == self.vertices:
                raise LiftError("vertices used as a plain value", node.lineno)
            if self.scan_ctx is not None and name == self.scan_ctx[0]:
                raise LiftError(
                    "scan vertex used outside .get_result()/.i/.j", node.lineno
                )
            if name in env:
                val = env[name]
                if isinstance(val, _Poison):
                    raise LiftError(
                        f"{name!r} is only assigned on one branch ({val.reason})",
                        node.lineno,
                    )
                if isinstance(val, _ListVal):
                    raise LiftError(
                        f"list {name!r} used outside max()/min()", node.lineno
                    )
                return val  # type: ignore[return-value]
            if name in self.globals_ns:
                gv = self.globals_ns[name]
                if isinstance(gv, (int, float, bool)):
                    return Const(gv)
                raise LiftError(
                    f"reads module global {name!r} of type {type(gv).__name__}",
                    node.lineno,
                )
            raise LiftError(f"unresolvable name {name!r}", node.lineno)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return SelfScalar(node.attr)
            if (
                self.scan_ctx is not None
                and isinstance(node.value, ast.Name)
                and node.value.id == self.scan_ctx[0]
                and node.attr in ("i", "j")
            ):
                return self.scan_ctx[1] if node.attr == "i" else self.scan_ctx[2]
            raise LiftError(
                f"attribute chain {ast.unparse(node)!r} is not self.<attr>",
                node.lineno,
            )
        if isinstance(node, ast.Subscript):
            base = node.value
            if isinstance(base, ast.Name) and base.id in self.dep_vars:
                row, col = self._dep_key(node.slice, env, node.lineno)
                return DepRead(row, col)
            target = self.lift_expr(base, env)
            if isinstance(target, SelfScalar):
                if isinstance(node.slice, ast.Tuple):
                    if len(node.slice.elts) != 2:
                        raise LiftError(
                            "self data subscript with != 2 indices", node.lineno
                        )
                    return SelfElem2(
                        target.attr,
                        self.lift_expr(node.slice.elts[0], env),
                        self.lift_expr(node.slice.elts[1], env),
                    )
                return SelfElem(target.attr, self.lift_expr(node.slice, env))
            raise LiftError(
                f"subscript of non-self data {ast.unparse(base)!r}", node.lineno
            )
        if isinstance(node, ast.BinOp):
            op = _BIN_OPS.get(type(node.op))
            if op is None:
                raise LiftError(
                    f"operator {type(node.op).__name__} is not liftable", node.lineno
                )
            return Bin(op, self.lift_expr(node.left, env), self.lift_expr(node.right, env))
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                return Neg(self.lift_expr(node.operand, env))
            if isinstance(node.op, ast.Not):
                return NotE(self.lift_expr(node.operand, env))
            raise LiftError(
                f"unary {type(node.op).__name__} is not liftable", node.lineno
            )
        if isinstance(node, ast.Compare):
            left = self.lift_expr(node.left, env)
            pairs: List[Expr] = []
            for op, comparator in zip(node.ops, node.comparators):
                sym = _CMP_OPS.get(type(op))
                if sym is None:
                    raise LiftError(
                        f"comparison {type(op).__name__} is not liftable", node.lineno
                    )
                right = self.lift_expr(comparator, env)
                pairs.append(Cmp(sym, left, right))
                left = right
            return pairs[0] if len(pairs) == 1 else BoolE("and", tuple(pairs))
        if isinstance(node, ast.BoolOp):
            op = "and" if isinstance(node.op, ast.And) else "or"
            return BoolE(op, tuple(self.lift_expr(v, env) for v in node.values))
        if isinstance(node, ast.IfExp):
            return Cond(
                self.lift_expr(node.test, env),
                self.lift_expr(node.body, env),
                self.lift_expr(node.orelse, env),
            )
        if isinstance(node, ast.Call):
            return self._lift_call(node, env)
        raise LiftError(
            f"{type(node).__name__} is outside the liftable subset",
            getattr(node, "lineno", None),
        )

    def _dep_key(
        self, key: ast.AST, env: Dict[str, object], lineno: int
    ) -> Tuple[Expr, Expr]:
        if not (isinstance(key, ast.Tuple) and len(key.elts) == 2):
            raise LiftError("dependency key is not a 2-tuple", lineno)
        return (
            self.lift_expr(key.elts[0], env),
            self.lift_expr(key.elts[1], env),
        )

    def _lift_call(self, node: ast.Call, env: Dict[str, object]) -> Expr:
        func = node.func
        if node.keywords:
            raise LiftError("call with keyword arguments", node.lineno)
        # dep.get((i-1, j), default)
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "get"
            and isinstance(func.value, ast.Name)
            and func.value.id in self.dep_vars
        ):
            if len(node.args) != 2:
                raise LiftError("dep.get() without an explicit default", node.lineno)
            row, col = self._dep_key(node.args[0], env, node.lineno)
            return DepRead(row, col, self.lift_expr(node.args[1], env))
        # vertex.get_result() inside a coordinate-scan block
        if (
            self.scan_ctx is not None
            and isinstance(func, ast.Attribute)
            and func.attr == "get_result"
            and isinstance(func.value, ast.Name)
            and func.value.id == self.scan_ctx[0]
            and not node.args
        ):
            return DepRead(self.scan_ctx[1], self.scan_ctx[2])
        if isinstance(func, ast.Name) and func.id in NUMERIC_CALLS:
            fn = func.id
            # max(candidates) over a lifted list -> a guarded reduction
            if (
                fn in ("max", "min")
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Name)
                and isinstance(env.get(node.args[0].id), _ListVal)
            ):
                items = env[node.args[0].id].items  # type: ignore[union-attr]
                if not items:
                    raise LiftError(f"{fn}() over an empty candidate list", node.lineno)
                return Reduce(fn, items)
            if fn in ("max", "min") and len(node.args) == 1:
                raise LiftError(
                    f"{fn}() over a comprehension/iterable argument", node.lineno
                )
            return Call(fn, tuple(self.lift_expr(a, env) for a in node.args))
        name = ast.unparse(func)
        raise LiftError(
            f"call to {name!r} outside the whitelisted numeric core", node.lineno
        )

    # -- statements -------------------------------------------------------------------
    def _is_depmap_call(self, value: ast.AST) -> bool:
        return (
            isinstance(value, ast.Call)
            and (
                (
                    isinstance(value.func, ast.Name)
                    and value.func.id == "dependency_map"
                )
                or (
                    isinstance(value.func, ast.Attribute)
                    and value.func.attr == "dependency_map"
                )
            )
            and bool(value.args)
            and isinstance(value.args[0], ast.Name)
            and value.args[0].id == self.vertices
        )

    def _do_assign(self, stmt: ast.Assign, env: Dict[str, object]) -> None:
        if len(stmt.targets) > 1:
            # chained assignment: a = b = c = <expr>, all plain names
            if not all(isinstance(t, ast.Name) for t in stmt.targets):
                raise LiftError("chained assignment to non-names", stmt.lineno)
            val = self.lift_expr(stmt.value, env)
            for t in stmt.targets:
                env[t.id] = val  # type: ignore[union-attr]
            return
        target = stmt.targets[0]
        if self._is_depmap_call(stmt.value):
            if isinstance(target, ast.Name):
                self.dep_vars.add(target.id)
                env.pop(target.id, None)
                return
            raise LiftError("dependency_map bound to a non-name", stmt.lineno)
        if isinstance(target, ast.Name):
            if isinstance(stmt.value, ast.List):
                env[target.id] = _ListVal(
                    tuple((None, self.lift_expr(e, env)) for e in stmt.value.elts)
                )
                return
            env[target.id] = self.lift_expr(stmt.value, env)
            return
        if isinstance(target, ast.Tuple) and isinstance(stmt.value, ast.Tuple):
            if len(target.elts) != len(stmt.value.elts):
                raise LiftError("unbalanced tuple assignment", stmt.lineno)
            vals = [self.lift_expr(v, env) for v in stmt.value.elts]
            for t, v in zip(target.elts, vals):
                if not isinstance(t, ast.Name):
                    raise LiftError("tuple assignment to a non-name", stmt.lineno)
                env[t.id] = v
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            raise LiftError(
                f"write through {ast.unparse(target)!r} (compute() must be pure)",
                stmt.lineno,
            )
        raise LiftError("unsupported assignment target", stmt.lineno)

    def _merge_env(
        self,
        test: Expr,
        benv: Dict[str, object],
        oenv: Dict[str, object],
        lineno: int,
    ) -> Dict[str, object]:
        merged: Dict[str, object] = {}
        for name in set(benv) | set(oenv):
            bv = benv.get(name, _Poison("undefined on else branch"))
            ov = oenv.get(name, _Poison("undefined on then branch"))
            if bv == ov:
                merged[name] = bv
            elif isinstance(bv, _Poison) or isinstance(ov, _Poison):
                merged[name] = _Poison("assigned on only one branch")
            elif isinstance(bv, _ListVal) or isinstance(ov, _ListVal):
                merged[name] = self._merge_lists(test, bv, ov, lineno)
            else:
                merged[name] = Cond(test, bv, ov)  # type: ignore[arg-type]
        return merged

    def _merge_lists(
        self, test: Expr, bv: object, ov: object, lineno: int
    ) -> _ListVal:
        if not (isinstance(bv, _ListVal) and isinstance(ov, _ListVal)):
            raise LiftError("a name is a list on only one branch", lineno)
        prefix = 0
        while (
            prefix < len(bv.items)
            and prefix < len(ov.items)
            and bv.items[prefix] == ov.items[prefix]
        ):
            prefix += 1
        if prefix < min(len(bv.items), len(ov.items)):
            raise LiftError("branches rewrite earlier list candidates", lineno)
        items = list(bv.items[:prefix])
        items += [(_conj(test, g), e) for g, e in bv.items[prefix:]]
        items += [(_conj(NotE(test), g), e) for g, e in ov.items[prefix:]]
        return _ListVal(items)

    def _do_scan_loop(self, stmt: ast.For, env: Dict[str, object]) -> None:
        """Lift the coordinate-scan idiom (Figure 7 style)::

            for vertex in vertices:
                if vertex.i == i - 1 and vertex.j == j:
                    top = vertex.get_result() + ...

        Each coordinate-test block runs exactly when that dependency is
        present, so its net effect on the environment is a phi through a
        :class:`Present` guard.
        """
        if not (
            isinstance(stmt.iter, ast.Name)
            and stmt.iter.id == self.vertices
            and isinstance(stmt.target, ast.Name)
            and not stmt.orelse
        ):
            raise LiftError(
                "only `for <v> in vertices:` scan loops are liftable", stmt.lineno
            )
        if self.scan_ctx is not None:
            raise LiftError("nested vertex scan loops", stmt.lineno)
        vname = stmt.target.id
        for sub in stmt.body:
            if not (isinstance(sub, ast.If) and not sub.orelse):
                raise LiftError(
                    "scan loop body must be coordinate-test if blocks", sub.lineno
                )
            key = self._scan_test(sub.test, vname, env)
            if key is None:
                raise LiftError(
                    "scan test is not `v.i == <expr> and v.j == <expr>`",
                    sub.lineno,
                )
            row, col = key
            self.scan_ctx = (vname, row, col)
            try:
                bcases, benv, bterm = self.exec_block(sub.body, dict(env))
            finally:
                self.scan_ctx = None
            if bcases or bterm:
                raise LiftError("return inside a scan loop", sub.lineno)
            guard = Present(row, col)
            for name in benv:
                if benv[name] != env.get(name):
                    old = env.get(name)
                    if not isinstance(old, Expr):
                        raise LiftError(
                            f"{name!r} first assigned inside a scan block",
                            sub.lineno,
                        )
                    env[name] = Cond(guard, benv[name], old)  # type: ignore[arg-type]

    def _scan_test(
        self, test: ast.AST, vname: str, env: Dict[str, object]
    ) -> Optional[Tuple[Expr, Expr]]:
        """Parse ``v.i == <expr> and v.j == <expr>`` -> (row, col) Exprs."""
        if not (
            isinstance(test, ast.BoolOp)
            and isinstance(test.op, ast.And)
            and len(test.values) == 2
        ):
            return None
        coords: Dict[str, Expr] = {}
        for part in test.values:
            if not (
                isinstance(part, ast.Compare)
                and len(part.ops) == 1
                and isinstance(part.ops[0], ast.Eq)
            ):
                return None
            left, right = part.left, part.comparators[0]
            if not (
                isinstance(left, ast.Attribute)
                and isinstance(left.value, ast.Name)
                and left.value.id == vname
                and left.attr in ("i", "j")
            ):
                left, right = right, left
            if not (
                isinstance(left, ast.Attribute)
                and isinstance(left.value, ast.Name)
                and left.value.id == vname
                and left.attr in ("i", "j")
            ):
                return None
            coords[left.attr] = self.lift_expr(right, env)
        if set(coords) != {"i", "j"}:
            return None
        return coords["i"], coords["j"]

    def exec_block(
        self, stmts: Sequence[ast.stmt], env: Dict[str, object]
    ) -> Tuple[List[Tuple[Optional[Expr], Expr]], Dict[str, object], bool]:
        """Symbolically run a statement list; returns (cases, env, terminated)."""
        cases: List[Tuple[Optional[Expr], Expr]] = []
        for stmt in stmts:
            if isinstance(stmt, ast.Expr):
                v = stmt.value
                if isinstance(v, ast.Constant) and isinstance(v.value, str):
                    continue  # docstring
                if (
                    isinstance(v, ast.Call)
                    and isinstance(v.func, ast.Attribute)
                    and v.func.attr == "append"
                    and isinstance(v.func.value, ast.Name)
                    and isinstance(env.get(v.func.value.id), _ListVal)
                    and len(v.args) == 1
                ):
                    lst: _ListVal = env[v.func.value.id]  # type: ignore[assignment]
                    env[v.func.value.id] = _ListVal(
                        lst.items + ((None, self.lift_expr(v.args[0], env)),)
                    )
                    continue
                raise LiftError("effectful expression statement", stmt.lineno)
            if isinstance(stmt, ast.Assign):
                self._do_assign(stmt, env)
                continue
            if isinstance(stmt, ast.AugAssign):
                op = _BIN_OPS.get(type(stmt.op))
                if op is None or not isinstance(stmt.target, ast.Name):
                    raise LiftError("unsupported augmented assignment", stmt.lineno)
                name = stmt.target.id
                prior = env.get(name)
                if not isinstance(prior, Expr):
                    raise LiftError(
                        f"augmented assignment to unbound name {name!r}", stmt.lineno
                    )
                env[name] = Bin(op, prior, self.lift_expr(stmt.value, env))
                continue
            if isinstance(stmt, ast.For):
                self._do_scan_loop(stmt, env)
                continue
            if isinstance(stmt, ast.AnnAssign):
                if stmt.value is None or not isinstance(stmt.target, ast.Name):
                    raise LiftError("annotated assignment without value", stmt.lineno)
                env[stmt.target.id] = self.lift_expr(stmt.value, env)
                continue
            if isinstance(stmt, ast.Return):
                if stmt.value is None:
                    raise LiftError("return without a value", stmt.lineno)
                cases.append((None, self.lift_expr(stmt.value, env)))
                return cases, env, True
            if isinstance(stmt, ast.If):
                test = self.lift_expr(stmt.test, env)
                bcases, benv, bterm = self.exec_block(stmt.body, dict(env))
                ocases, oenv, oterm = self.exec_block(stmt.orelse, dict(env))
                for g, e in bcases:
                    cases.append((_conj(test, g), e))
                for g, e in ocases:
                    cases.append((_conj(NotE(test), g), e))
                if bterm and oterm:
                    return cases, env, True
                if bterm:
                    env = oenv  # the continuation only runs when test is false
                elif oterm:
                    env = benv
                else:
                    env = self._merge_env(test, benv, oenv, stmt.lineno)
                continue
            if isinstance(stmt, ast.Pass):
                continue
            raise LiftError(
                f"{type(stmt).__name__} statement is outside the liftable subset",
                stmt.lineno,
            )
        return cases, env, False

    def lift(self, fn: ast.FunctionDef) -> ComputeIR:
        cases, _env, terminated = self.exec_block(fn.body, {})
        if not terminated:
            raise LiftError("compute() can fall off the end without returning")
        # drop guards the decision list makes redundant: a trailing
        # guarded case acts as the default once every earlier guard failed
        return ComputeIR(cases=tuple(cases), pi=self.pi, pj=self.pj)


def lift_function(
    fn: ast.FunctionDef, globals_ns: Optional[Dict[str, object]] = None
) -> ComputeIR:
    """Lift a parsed ``compute`` FunctionDef into :class:`ComputeIR`."""
    return _Lifter(fn, globals_ns or {}).lift(fn)


def lift_compute(compute_fn) -> ComputeIR:
    """Lift a ``compute`` function/bound method into :class:`ComputeIR`.

    Raises :class:`LiftError` when the body leaves the liftable subset
    and ``OSError``/``TypeError`` when source is unavailable.
    """
    source = textwrap.dedent(inspect.getsource(compute_fn))
    tree = ast.parse(source)
    fn = next((n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)), None)
    if fn is None:  # pragma: no cover - getsource always yields a def
        raise LiftError("no function definition found in source")
    globals_ns = getattr(compute_fn, "__globals__", None)
    if globals_ns is None:
        globals_ns = getattr(
            getattr(compute_fn, "__func__", None), "__globals__", {}
        )
    return lift_function(fn, globals_ns)


# -- normalization --------------------------------------------------------------------
def _rebuild(e: Expr, mapper) -> Expr:
    """Rebuild ``e`` with every child expression passed through ``mapper``."""
    if isinstance(e, (Const, Index, SelfScalar)):
        return e
    if isinstance(e, SelfElem):
        return SelfElem(e.attr, mapper(e.index))
    if isinstance(e, SelfElem2):
        return SelfElem2(e.attr, mapper(e.row), mapper(e.col))
    if isinstance(e, DepRead):
        return DepRead(
            mapper(e.row),
            mapper(e.col),
            None if e.default is None else mapper(e.default),
        )
    if isinstance(e, Present):
        return Present(mapper(e.row), mapper(e.col))
    if isinstance(e, Bin):
        return Bin(e.op, mapper(e.left), mapper(e.right))
    if isinstance(e, Neg):
        return Neg(mapper(e.operand))
    if isinstance(e, Cmp):
        return Cmp(e.op, mapper(e.left), mapper(e.right))
    if isinstance(e, BoolE):
        return BoolE(e.op, tuple(mapper(p) for p in e.parts))
    if isinstance(e, NotE):
        return NotE(mapper(e.operand))
    if isinstance(e, Call):
        return Call(e.fn, tuple(mapper(a) for a in e.args))
    if isinstance(e, Cond):
        return Cond(mapper(e.test), mapper(e.then), mapper(e.orelse))
    if isinstance(e, Reduce):
        return Reduce(
            e.fn,
            tuple(
                (None if g is None else mapper(g), mapper(x)) for g, x in e.items
            ),
        )
    raise TypeError(type(e).__name__)  # pragma: no cover


def _normalize_expr(e: Expr) -> Expr:
    e = _rebuild(e, _normalize_expr)
    # phi nodes that are really max/min: Cond(a > b, a, b) and friends
    if isinstance(e, Cond) and isinstance(e.test, Cmp):
        t, a, b = e.test, e.then, e.orelse
        if t.op in (">", ">=") and t.left == a and t.right == b:
            return Call("max", (a, b))
        if t.op in ("<", "<=") and t.left == a and t.right == b:
            return Call("min", (a, b))
        if t.op in (">", ">=") and t.left == b and t.right == a:
            return Call("min", (a, b))
        if t.op in ("<", "<=") and t.left == b and t.right == a:
            return Call("max", (a, b))
    return e


def normalize(ir: ComputeIR) -> ComputeIR:
    """Rewrite compare-and-pick phi nodes into ``max``/``min`` calls.

    ``best = take if take > best else best`` and the equivalent branch
    assignment both become ``max(take, best)`` — the form the classifier's
    row-scan matcher and the code generator consume.
    """
    cases = tuple(
        (
            None if g is None else _normalize_expr(g),
            _normalize_expr(v),
        )
        for g, v in ir.cases
    )
    return ComputeIR(cases=cases, pi=ir.pi, pj=ir.pj)


# -- affine index resolution ----------------------------------------------------------
@dataclass(frozen=True)
class AffineIndex:
    """An index expression as ``axis + const + sum(sign * data_term)``.

    ``axis`` is ``"i"``/``"j"`` (coefficient one) or ``None``; ``terms``
    holds run-constant data expressions (``self.weights[i-1]``-style)
    with their signs. Anything that cannot be written in this shape
    resolves to ``None``.
    """

    axis: Optional[str]
    const: int
    terms: Tuple[Tuple[int, Expr], ...] = ()

    @property
    def data_dependent(self) -> bool:
        return bool(self.terms)


def affine_of(e: Expr) -> Optional[AffineIndex]:
    """Resolve an IR index expression to :class:`AffineIndex`, or ``None``."""
    parts: List[Tuple[int, Expr]] = []

    def collect(node: Expr, sign: int) -> bool:
        if isinstance(node, Bin) and node.op in ("+", "-"):
            if not collect(node.left, sign):
                return False
            return collect(node.right, sign if node.op == "+" else -sign)
        if isinstance(node, Neg):
            return collect(node.operand, -sign)
        parts.append((sign, node))
        return True

    if not collect(e, 1):  # pragma: no cover - collect always succeeds
        return None
    axis: Optional[str] = None
    const = 0
    terms: List[Tuple[int, Expr]] = []
    for sign, node in parts:
        if isinstance(node, Index):
            if axis is not None or sign != 1:
                return None  # i+j / -i indices are out of scope
            axis = node.axis
        elif isinstance(node, Const):
            if not isinstance(node.value, int):
                return None
            const += sign * node.value
        elif isinstance(node, (SelfScalar, SelfElem, SelfElem2)):
            terms.append((sign, node))
        else:
            return None  # DepRead / Cond / Call inside an index
    return AffineIndex(axis=axis, const=const, terms=tuple(terms))
