"""Fixture registry for ``python -m repro lint``.

Maps the names the CLI accepts to small, deterministic instances of every
built-in pattern and application. Unlike the rest of :mod:`repro.analysis`
this module imports the pattern and app packages, so it must never be
imported from ``repro.analysis.__init__`` (``repro.core`` modules import
the sanitizer from there).
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Tuple

import numpy as np

from repro.core.api import DPX10App
from repro.core.dag import Dag
from repro.errors import AnalysisError

__all__ = ["pattern_fixture", "app_fixture", "pattern_names", "app_names"]


def _pattern_fixtures() -> Dict[str, Callable[[], Dag]]:
    from repro.patterns import PATTERNS
    from repro.patterns.knapsack import KnapsackDag
    from repro.patterns.tensor import TensorWavefrontDag
    from repro.patterns.tree import TreeDag

    fixtures: Dict[str, Callable[[], Dag]] = {}
    for name, cls in PATTERNS.items():
        if name == "banded":
            fixtures[name] = lambda cls=cls: cls(12, 12, 3)
        else:
            fixtures[name] = lambda cls=cls: cls(12, 12)
    fixtures["knapsack"] = lambda: KnapsackDag([2, 3, 5, 7], 15)
    # non-grid index domains: not registered in PATTERNS (their
    # constructors are not (height, width)), so fixed instances here
    fixtures["tree"] = lambda: TreeDag(
        [-1, 0, 0, 1, 1, 2, 2, 3, 4, 5, 5, 6]
    )
    fixtures["tensor"] = lambda: TensorWavefrontDag((4, 4, 4))
    return fixtures


def _app_fixtures() -> Dict[str, Callable[[], Tuple[DPX10App, Dag]]]:
    from repro.apps.banded_alignment import BandedEditDistanceApp
    from repro.apps.common_substring import CommonSubstringApp
    from repro.apps.cyk import CNFGrammar, CYKApp
    from repro.apps.edit_distance import EditDistanceApp
    from repro.apps.egg_drop import EggDropApp, EggDropDag
    from repro.apps.knapsack import KnapsackApp
    from repro.apps.lcs import LCSApp
    from repro.apps.lps import LPSApp
    from repro.apps.matrix_chain import MatrixChainApp
    from repro.apps.mtp import MTPApp
    from repro.apps.needleman_wunsch import NWApp
    from repro.apps.smith_waterman import SWApp
    from repro.apps.unbounded_knapsack import (
        UnboundedKnapsackApp,
        UnboundedKnapsackDag,
    )
    from repro.apps.viterbi import ViterbiApp
    from repro.patterns import (
        BandedDiagonalDag,
        DiagChainDag,
        DiagonalDag,
        FullRowDag,
        GridDag,
        IntervalDag,
        TriangularDag,
    )
    from repro.patterns.knapsack import KnapsackDag

    x, y = "GATTACA", "GCATGCT"
    weights, values, capacity = [2, 3, 5, 7], [3, 4, 8, 11], 15

    def viterbi() -> Tuple[DPX10App, Dag]:
        log_init = np.log(np.array([0.6, 0.4]))
        log_trans = np.log(np.array([[0.7, 0.3], [0.4, 0.6]]))
        log_emit = np.log(np.array([[0.5, 0.5], [0.1, 0.9]]))
        obs = np.array([0, 1, 0, 1, 1])
        return (
            ViterbiApp(log_init, log_trans, log_emit, obs),
            FullRowDag(len(obs), 2),
        )

    def mtp() -> Tuple[DPX10App, Dag]:
        rng = np.random.default_rng(0)
        w_down = rng.integers(1, 9, size=(7, 8))
        w_right = rng.integers(1, 9, size=(8, 7))
        return MTPApp(w_down, w_right), GridDag(8, 8)

    return {
        "lcs": lambda: (LCSApp(x, y), DiagonalDag(len(x) + 1, len(y) + 1)),
        "sw": lambda: (SWApp(x, y), DiagonalDag(len(x) + 1, len(y) + 1)),
        "nw": lambda: (NWApp(x, y), DiagonalDag(len(x) + 1, len(y) + 1)),
        "edit_distance": lambda: (
            EditDistanceApp(x, y),
            DiagonalDag(len(x) + 1, len(y) + 1),
        ),
        "banded": lambda: (
            BandedEditDistanceApp(x, y),
            BandedDiagonalDag(len(x) + 1, len(y) + 1, 3),
        ),
        "lps": lambda: (LPSApp("character"), IntervalDag(9, 9)),
        "common_substring": lambda: (
            CommonSubstringApp(x, y),
            DiagChainDag(len(x) + 1, len(y) + 1),
        ),
        "cyk": lambda: (
            CYKApp(CNFGrammar.balanced_parentheses(), "(()())"),
            TriangularDag(6, 6),
        ),
        "matrix_chain": lambda: (
            MatrixChainApp([30, 35, 15, 5, 10, 20, 25]),
            TriangularDag(6, 6),
        ),
        "knapsack": lambda: (
            KnapsackApp(weights, values, capacity),
            KnapsackDag(weights, capacity),
        ),
        "unbounded_knapsack": lambda: (
            UnboundedKnapsackApp(weights, values, capacity),
            UnboundedKnapsackDag(weights, capacity),
        ),
        "egg_drop": lambda: (EggDropApp(3, 12), EggDropDag(3, 12)),
        "viterbi": viterbi,
        "mtp": mtp,
        "tree_knapsack": _tree_knapsack,
        "tree_mis": _tree_mis,
        "msa3": _msa3,
    }


def _tree_knapsack() -> Tuple[DPX10App, Dag]:
    from repro.apps.tree_knapsack import TreeKnapsackApp, make_tree_instance
    from repro.core.domain import TreeDomain
    from repro.patterns.tree import TreeDag

    parents, weights, values = make_tree_instance(12, seed=0)
    dom = TreeDomain(parents)
    return TreeKnapsackApp(dom, weights, values, 15), TreeDag(dom)


def _tree_mis() -> Tuple[DPX10App, Dag]:
    from repro.apps.tree_knapsack import make_tree_instance
    from repro.apps.tree_mis import TreeMISApp
    from repro.core.domain import TreeDomain
    from repro.patterns.tree import TreeDag

    parents, weights, _ = make_tree_instance(12, seed=0)
    dom = TreeDomain(parents)
    return TreeMISApp(dom, weights), TreeDag(dom)


def _msa3() -> Tuple[DPX10App, Dag]:
    from repro.apps.msa import MSA3App, make_msa3_instance
    from repro.patterns.tensor import TensorWavefrontDag

    x, y, z = make_msa3_instance(5, seed=0)
    app = MSA3App(x, y, z)
    return app, TensorWavefrontDag(app.domain.shape)


def _lookup(table: Dict[str, Callable], name: str, kind: str):
    if name not in table:
        hint = ""
        close = difflib.get_close_matches(name, table, n=1)
        if close:
            hint = f"; did you mean {close[0]!r}?"
        raise AnalysisError(
            f"unknown {kind} {name!r}{hint} known: {sorted(table)}"
        )
    return table[name]()


def pattern_names() -> Tuple[str, ...]:
    return tuple(sorted(_pattern_fixtures()))


def app_names() -> Tuple[str, ...]:
    return tuple(sorted(_app_fixtures()))


def pattern_fixture(name: str) -> Dag:
    """A small instance of the named built-in pattern."""
    return _lookup(_pattern_fixtures(), name, "pattern")


def app_fixture(name: str) -> Tuple[DPX10App, Dag]:
    """A small deterministic (app, dag) instance of the named application."""
    return _lookup(_app_fixtures(), name, "app")
