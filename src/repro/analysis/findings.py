"""Finding model shared by every ``repro.analysis`` pass.

A *finding* is one diagnosed defect (or noteworthy fact) about a DP
program: a stable code (``DP1xx`` structural, ``DP2xx`` compute-lint,
``DP3xx`` runtime), a severity, a human message and an optional source
location. Passes return :class:`AnalysisReport` objects; the CLI turns
them into text/JSON and an exit code.

Finding codes
=============

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
DP101     error     offset set admits no wavefront ranking (cyclic stencil)
DP102     error     dependency out of bounds / inactive / self / duplicate
DP103     error     ``get_anti_dependency`` is not the inverse relation
DP104     error     malformed offset set (zero or duplicate offsets)
DP105     error     pattern is unschedulable (Kahn's algorithm stalls)
DP106     note      pattern too large/irregular to verify exhaustively
DP201     error     ``compute()`` reads a cell outside ``get_dependency``
DP202     warning   nondeterminism source inside ``compute()``
DP203     warning   ``compute()`` mutates global or shared state
DP204     note      data-dependent dependency index (not statically
                    checkable; consider ``DPX10Config(sanitize=True)``)
DP205     warning   result-view read inside ``compute()`` with an index
                    the linter cannot resolve
DP206     error     hand-written ``compute_tile`` indexes the window
                    outside the declared tile box (tile + stencil halo)
DP301     error     runtime sanitizer: undeclared read during ``compute()``
DP302     error     runtime sanitizer: dependency gathered before it
                    finished (under-declared anti-dependency)
DP401     note      ``compute()`` left the liftable subset; no IR, so the
                    kernel-readiness classifier demotes to OPAQUE
DP402     note      ``value_dtype`` is ``None``: no typed value plane
DP403     note      lifted but not vectorizable (type conflict, non-affine
                    index, unsupported dependency shape)
DP404     error     inferred dependency footprint contradicts the declared
                    stencil on real cells
DP405     note      effect analysis found mutation, foreign calls or
                    nondeterminism; demoted to OPAQUE
========  ========  =====================================================

DP301/DP302 are raised as :class:`~repro.errors.DependencyRaceError`
during a sanitized run rather than collected in a report. DP4xx come
from :mod:`repro.analysis.classify` (the ``repro analyze`` CLI), not
the lint.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = ["Severity", "Finding", "AnalysisReport", "FINDING_CODES"]


class Severity(enum.IntEnum):
    """Ordered severity ladder; only ``ERROR`` fails a lint run."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


#: code -> (default severity, one-line description)
FINDING_CODES: Dict[str, tuple] = {
    "DP101": (Severity.ERROR, "cyclic stencil: no wavefront ranking vector exists"),
    "DP102": (Severity.ERROR, "invalid dependency (out of bounds/inactive/self/duplicate)"),
    "DP103": (Severity.ERROR, "anti-dependency is not the inverse of the dependency relation"),
    "DP104": (Severity.ERROR, "malformed offset set"),
    "DP105": (Severity.ERROR, "pattern is unschedulable"),
    "DP106": (Severity.NOTE, "pattern not exhaustively verifiable"),
    "DP201": (Severity.ERROR, "compute() reads an undeclared cell"),
    "DP202": (Severity.WARNING, "nondeterminism source in compute()"),
    "DP203": (Severity.WARNING, "compute() mutates global or shared state"),
    "DP204": (Severity.NOTE, "data-dependent dependency index"),
    "DP205": (Severity.WARNING, "unresolvable result-view read in compute()"),
    "DP206": (Severity.ERROR, "compute_tile indexes outside the declared tile box"),
    "DP301": (Severity.ERROR, "undeclared read during compute() (runtime)"),
    "DP302": (Severity.ERROR, "unfinished dependency gathered (runtime)"),
    "DP401": (Severity.NOTE, "compute() outside the liftable subset (OPAQUE)"),
    "DP402": (Severity.NOTE, "value_dtype is None: nothing to vectorize (OPAQUE)"),
    "DP403": (Severity.NOTE, "lifted but not vectorizable (OPAQUE)"),
    "DP404": (Severity.ERROR, "inferred footprint contradicts the declared stencil"),
    "DP405": (Severity.NOTE, "impure compute(): mutation/nondeterminism (OPAQUE)"),
}


@dataclass(frozen=True)
class Finding:
    """One diagnosed fact about a pattern or app."""

    code: str
    severity: Severity
    message: str
    #: what was analysed, e.g. ``pattern:diagonal`` or ``app:lcs``
    subject: str = ""
    #: source location (lint findings), as ``file.py:line``
    location: Optional[str] = None

    def __str__(self) -> str:
        loc = f" ({self.location})" if self.location else ""
        subj = f" [{self.subject}]" if self.subject else ""
        return f"{self.severity.name:7s} {self.code}{subj} {self.message}{loc}"


def make_finding(
    code: str,
    message: str,
    subject: str = "",
    location: Optional[str] = None,
    severity: Optional[Severity] = None,
) -> Finding:
    """Build a finding, defaulting severity from the code catalog."""
    if severity is None:
        severity = FINDING_CODES[code][0]
    return Finding(code, severity, message, subject, location)


@dataclass
class AnalysisReport:
    """Findings plus (for verifier passes) static parallelism metrics."""

    subject: str = ""
    findings: List[Finding] = field(default_factory=list)
    #: symbolic verifier metrics (wavefront vector/depth, widths, ...)
    metrics: Dict[str, object] = field(default_factory=dict)
    #: which engine produced the verdict: "symbolic" or "enumeration"
    method: str = ""

    def add(
        self,
        code: str,
        message: str,
        location: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> None:
        self.findings.append(
            make_finding(code, message, self.subject, location, severity)
        )

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    @property
    def max_severity(self) -> Optional[Severity]:
        return max((f.severity for f in self.findings), default=None)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was recorded."""
        return all(f.severity < Severity.ERROR for f in self.findings)

    def codes(self) -> List[str]:
        return [f.code for f in self.findings]

    def summary(self) -> str:
        counts: Dict[Severity, int] = {}
        for f in self.findings:
            counts[f.severity] = counts.get(f.severity, 0) + 1
        if not counts:
            return f"{self.subject or 'analysis'}: clean"
        parts = ", ".join(
            f"{counts[s]} {s.name.lower()}(s)"
            for s in sorted(counts, reverse=True)
        )
        return f"{self.subject or 'analysis'}: {parts}"
