"""Inference passes over the lifted ``compute()`` IR.

Three passes feed the classifier (:mod:`repro.analysis.classify`):

* :func:`analyze_effects` — AST-level effect/purity analysis: what the
  recurrence reads from ``self`` and module globals, what it mutates,
  and which calls leave the whitelisted numeric core (including the
  nondeterminism sources the lint flags as DP202).
* :func:`infer_types` — dtype inference seeded from ``value_dtype``:
  every expression gets a kind (``int``/``float``/``bool``/``str``/the
  value dtype) and each case's value must unify with the cell dtype.
* :func:`footprint` — dependency-footprint extraction: every
  :class:`~repro.analysis.ir.DepRead`/``Present`` index resolved to
  :class:`~repro.analysis.ir.AffineIndex` form (``axis + const +
  data terms``), which is what lets ``(i-1, j - self.weights[i-1])``
  be cross-checked against the pattern's declared stencil instead of
  dead-ending in a DP204 note.

:func:`probe_footprint` then evaluates those affine indices on a sample
of real cells (using the app's actual data) and compares each reachable
read against ``dag.get_dependency`` — the numeric cross-check behind
DP404.

Pure ``ast``/IR module: no ``repro.core`` imports, so it is safe to pull
into the light ``repro.analysis`` import surface.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .ir import (
    AffineIndex,
    Bin,
    BoolE,
    Call,
    Cmp,
    ComputeIR,
    Cond,
    Const,
    DepRead,
    Expr,
    Index,
    Neg,
    NotE,
    Present,
    Reduce,
    SelfElem,
    SelfElem2,
    SelfScalar,
    affine_of,
)
from .lint import _NONDET_ATTRS, _NONDET_BUILTINS, _NONDET_ROOTS

__all__ = [
    "Effects",
    "InferError",
    "FootEntry",
    "analyze_effects",
    "infer_types",
    "footprint",
    "eval_expr",
    "probe_footprint",
    "sample_cells",
]

#: call roots that never count as foreign: the numeric core, the harness
#: API, and pure builtins (loopy-but-pure bodies should demote as DP401,
#: not DP405)
_CORE_CALLS = {
    "max",
    "min",
    "abs",
    "int",
    "float",
    "bool",
    "len",
    "sum",
    "range",
    "enumerate",
    "zip",
    "sorted",
    "reversed",
    "list",
    "tuple",
    "dict",
    "set",
    "frozenset",
    "dependency_map",
}
#: method names that are part of the harness contract, not effects
_CORE_METHODS = {"get", "get_result", "append", "values", "items", "keys"}


class InferError(Exception):
    """A pass could not complete (type conflict, non-affine index, ...)."""


# -- effect / purity analysis ---------------------------------------------------------
@dataclass
class Effects:
    """What a ``compute()`` body touches beyond its dependency reads."""

    self_reads: Tuple[str, ...] = ()
    self_writes: Tuple[str, ...] = ()
    global_reads: Tuple[str, ...] = ()
    global_writes: Tuple[str, ...] = ()
    foreign_calls: Tuple[str, ...] = ()
    nondet_calls: Tuple[str, ...] = ()

    @property
    def pure(self) -> bool:
        return not (self.self_writes or self.global_writes or self.foreign_calls)

    def describe(self) -> str:
        bits = []
        if self.self_writes:
            bits.append(f"writes self.{'/self.'.join(self.self_writes)}")
        if self.global_writes:
            bits.append(f"mutates global {'/'.join(self.global_writes)}")
        if self.nondet_calls:
            bits.append(f"nondeterministic call {'/'.join(self.nondet_calls)}")
        foreign = [c for c in self.foreign_calls if c not in self.nondet_calls]
        if foreign:
            bits.append(f"calls {'/'.join(foreign)} outside the numeric core")
        return "; ".join(bits) if bits else "pure"


def _call_chain(node: ast.AST) -> List[str]:
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
    chain.reverse()
    return chain


def analyze_effects(compute_fn) -> Effects:
    """Effect analysis of a ``compute`` function (AST-level, total)."""
    source = textwrap.dedent(inspect.getsource(compute_fn))
    tree = ast.parse(source)
    fn = next(n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef))
    globals_ns = getattr(compute_fn, "__globals__", {}) or {}

    args = fn.args
    local: set = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            local.add(node.id)
        elif isinstance(node, ast.For) and isinstance(node.target, ast.Name):
            local.add(node.target.id)
        elif isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for comp in node.generators:
                for sub in ast.walk(comp.target):
                    if isinstance(sub, ast.Name):
                        local.add(sub.id)

    self_reads: List[str] = []
    self_writes: List[str] = []
    global_reads: List[str] = []
    global_writes: List[str] = []
    foreign: List[str] = []
    nondet: List[str] = []

    def note(bucket: List[str], name: str) -> None:
        if name not in bucket:
            bucket.append(name)

    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                if isinstance(node.ctx, ast.Store):
                    note(self_writes, node.attr)
                else:
                    note(self_reads, node.attr)
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
            base = node.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                note(self_writes, base.attr)
            elif isinstance(base, ast.Name) and base.id not in local:
                note(global_writes, base.id)
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                note(self_writes, target.attr)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            name = node.id
            if (
                name not in local
                and name != "self"
                and not hasattr(builtins, name)
                and name in globals_ns
            ):
                note(global_reads, name)
        elif isinstance(node, ast.Call):
            chain = _call_chain(node.func)
            if not chain:
                continue
            root = chain[0]
            dotted = ".".join(chain)
            if root in _NONDET_ROOTS or (
                len(chain) > 1 and set(chain[1:]) & _NONDET_ATTRS
            ):
                note(nondet, dotted)
                note(foreign, dotted)
            elif len(chain) == 1 and root in _NONDET_BUILTINS:
                note(nondet, dotted)
                note(foreign, dotted)
            elif len(chain) == 1:
                if root not in _CORE_CALLS and root not in local:
                    note(foreign, dotted)
            else:
                if chain[-1] not in _CORE_METHODS and root != "self":
                    note(foreign, dotted)
                elif root == "self" and chain[-1] not in _CORE_METHODS:
                    note(foreign, dotted)
    return Effects(
        self_reads=tuple(self_reads),
        self_writes=tuple(self_writes),
        global_reads=tuple(global_reads),
        global_writes=tuple(global_writes),
        foreign_calls=tuple(foreign),
        nondet_calls=tuple(nondet),
    )


# -- dtype inference ------------------------------------------------------------------
_NUM_ORDER = {"bool": 0, "int": 1, "value": 1, "float": 2}


def _unify(a: str, b: str) -> str:
    if a == b:
        return a
    if a == "str" or b == "str":
        raise InferError(f"cannot unify {a} with {b}")
    return a if _NUM_ORDER[a] >= _NUM_ORDER[b] else b


def _elem_kind(app, attr: str) -> str:
    """Kind of an element of ``app.<attr>`` (str char, list item, array cell)."""
    data = getattr(app, attr, None)
    if isinstance(data, str):
        return "str"
    if isinstance(data, (list, tuple)):
        head = data[0] if data else 0
        return _scalar_kind(head)
    kind = getattr(getattr(data, "dtype", None), "kind", None)
    if kind in ("i", "u"):
        return "int"
    if kind == "f":
        return "float"
    if kind == "b":
        return "bool"
    if kind in ("U", "S"):
        return "str"
    raise InferError(f"cannot infer element kind of self.{attr}")


def _scalar_kind(value) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    kind = getattr(getattr(value, "dtype", None), "kind", None)
    if kind in ("i", "u"):
        return "int"
    if kind == "f":
        return "float"
    raise InferError(f"cannot infer kind of constant {value!r}")


def _expr_kind(e: Expr, app) -> str:
    if isinstance(e, Const):
        return _scalar_kind(e.value)
    if isinstance(e, Index):
        return "int"
    if isinstance(e, DepRead):
        kind = "value"
        if e.default is not None:
            kind = _unify(kind, _expr_kind(e.default, app))
        return kind
    if isinstance(e, Present):
        return "bool"
    if isinstance(e, SelfScalar):
        if app is None:
            return "int"
        return _scalar_kind(getattr(app, e.attr))
    if isinstance(e, (SelfElem, SelfElem2)):
        idxs = (e.index,) if isinstance(e, SelfElem) else (e.row, e.col)
        for idx in idxs:
            k = _expr_kind(idx, app)
            if k not in ("int", "bool", "value"):
                raise InferError(f"non-integer subscript of self.{e.attr}")
        return "int" if app is None else _elem_kind(app, e.attr)
    if isinstance(e, Bin):
        lk, rk = _expr_kind(e.left, app), _expr_kind(e.right, app)
        if lk == "str" or rk == "str":
            raise InferError(f"string arithmetic in {e.op!r}")
        return _unify(lk, rk)
    if isinstance(e, Neg):
        k = _expr_kind(e.operand, app)
        if k == "str":
            raise InferError("negation of a string")
        return k
    if isinstance(e, Cmp):
        lk, rk = _expr_kind(e.left, app), _expr_kind(e.right, app)
        if ("str" in (lk, rk)) and lk != rk:
            raise InferError(f"comparison of {lk} with {rk}")
        if "str" in (lk, rk) and e.op not in ("==", "!="):
            raise InferError("ordered comparison of strings")
        return "bool"
    if isinstance(e, (BoolE, NotE)):
        return "bool"
    if isinstance(e, Call):
        if e.fn == "int":
            return "int"
        if e.fn == "float":
            return "float"
        kinds = [_expr_kind(a, app) for a in e.args]
        out = "bool"
        for k in kinds:
            out = _unify(out, k)
        return out
    if isinstance(e, Cond):
        _expr_kind(e.test, app)
        return _unify(_expr_kind(e.then, app), _expr_kind(e.orelse, app))
    if isinstance(e, Reduce):
        out = None
        for g, x in e.items:
            if g is not None:
                _expr_kind(g, app)
            k = _expr_kind(x, app)
            out = k if out is None else _unify(out, k)
        return out or "int"
    raise InferError(f"untypable IR node {type(e).__name__}")  # pragma: no cover


def infer_types(ir: ComputeIR, value_dtype, app=None) -> Dict[int, str]:
    """Check each case types against ``value_dtype``; returns case kinds.

    ``value_dtype`` only selects the target family (integer/float); the
    pass raises :class:`InferError` on kind conflicts (string results,
    string arithmetic, ordered string comparisons).
    """
    import numpy as np

    target = "float" if np.dtype(value_dtype).kind == "f" else "int"
    out: Dict[int, str] = {}
    for idx, (guard, value) in enumerate(ir.cases):
        if guard is not None:
            gk = _expr_kind(guard, app)
            if gk == "str":
                raise InferError(f"case {idx} guard has kind {gk}")
        vk = _expr_kind(value, app)
        if vk == "str":
            raise InferError(f"case {idx} produces a string value")
        if vk == "float" and target == "int":
            raise InferError(
                f"case {idx} produces a float for an integer value_dtype"
            )
        out[idx] = vk
    return out


# -- dependency-footprint extraction --------------------------------------------------
@dataclass(frozen=True)
class FootEntry:
    """One dependency access with affine-resolved indices.

    ``optional`` marks accesses that tolerate absence (``dep.get`` with
    a default, or a ``Present`` guard probe).
    """

    row: AffineIndex
    col: AffineIndex
    optional: bool
    read: Optional[DepRead] = None

    @property
    def data_dependent(self) -> bool:
        return self.row.data_dependent or self.col.data_dependent

    @property
    def const_offset(self) -> Optional[Tuple[int, int]]:
        """(di, dj) when both indices are pure ``axis + const`` form."""
        if (
            self.row.axis == "i"
            and self.col.axis == "j"
            and not self.row.terms
            and not self.col.terms
        ):
            return (self.row.const, self.col.const)
        return None


def footprint(ir: ComputeIR) -> List[FootEntry]:
    """Resolve every dependency access to affine form.

    Raises :class:`InferError` when an index cannot be written as
    ``axis + const + data terms`` — the unresolvable case that keeps
    DP204 a note.
    """
    entries: List[FootEntry] = []
    for e in ir.exprs():
        if isinstance(e, (DepRead, Present)):
            row, col = affine_of(e.row), affine_of(e.col)
            if row is None or col is None:
                raise InferError(
                    f"dependency index {ir and '' or ''}({e.row}, {e.col})"
                    " is not affine"
                )
            if row.axis != "i" or col.axis != "j":
                raise InferError(
                    "dependency index does not follow (i + di, j + dj) form"
                )
            optional = isinstance(e, Present) or (
                isinstance(e, DepRead) and e.default is not None
            )
            entry = FootEntry(
                row=row,
                col=col,
                optional=optional,
                read=e if isinstance(e, DepRead) else None,
            )
            if entry not in entries:
                entries.append(entry)
    return entries


# -- scalar evaluation / numeric probing ----------------------------------------------
class _NeedsDep(Exception):
    """eval_expr hit a DepRead/Present — value unknown without a solve."""


def eval_expr(e: Expr, i: int, j: int, app):
    """Evaluate a data-only IR expression at cell ``(i, j)``.

    Dependency reads/presence tests raise an internal marker the probe
    treats as "unknown"; everything else evaluates with the app's real
    data, which is what resolves data-dependent indices numerically.
    """
    if isinstance(e, Const):
        return e.value
    if isinstance(e, Index):
        return i if e.axis == "i" else j
    if isinstance(e, (DepRead, Present)):
        raise _NeedsDep()
    if isinstance(e, SelfScalar):
        return getattr(app, e.attr)
    if isinstance(e, SelfElem):
        return getattr(app, e.attr)[eval_expr(e.index, i, j, app)]
    if isinstance(e, SelfElem2):
        return getattr(app, e.attr)[
            eval_expr(e.row, i, j, app), eval_expr(e.col, i, j, app)
        ]
    if isinstance(e, Bin):
        lv, rv = eval_expr(e.left, i, j, app), eval_expr(e.right, i, j, app)
        if e.op == "+":
            return lv + rv
        if e.op == "-":
            return lv - rv
        if e.op == "*":
            return lv * rv
        if e.op == "//":
            return lv // rv
        return lv % rv
    if isinstance(e, Neg):
        return -eval_expr(e.operand, i, j, app)
    if isinstance(e, Cmp):
        lv, rv = eval_expr(e.left, i, j, app), eval_expr(e.right, i, j, app)
        return {
            "==": lv == rv,
            "!=": lv != rv,
            "<": lv < rv,
            "<=": lv <= rv,
            ">": lv > rv,
            ">=": lv >= rv,
        }[e.op]
    if isinstance(e, BoolE):
        if e.op == "and":
            return all(bool(eval_expr(p, i, j, app)) for p in e.parts)
        return any(bool(eval_expr(p, i, j, app)) for p in e.parts)
    if isinstance(e, NotE):
        return not eval_expr(e.operand, i, j, app)
    if isinstance(e, Call):
        args = [eval_expr(a, i, j, app) for a in e.args]
        return {"max": max, "min": min, "abs": abs, "int": int, "float": float}[
            e.fn
        ](*args)
    if isinstance(e, Cond):
        if bool(eval_expr(e.test, i, j, app)):
            return eval_expr(e.then, i, j, app)
        return eval_expr(e.orelse, i, j, app)
    if isinstance(e, Reduce):
        fn = max if e.fn == "max" else min
        vals = [
            eval_expr(x, i, j, app)
            for g, x in e.items
            if g is None or bool(eval_expr(g, i, j, app))
        ]
        if not vals:
            raise _NeedsDep()  # empty candidate set: treat as unknown
        return fn(vals)
    raise InferError(f"unevaluable IR node {type(e).__name__}")  # pragma: no cover


def sample_cells(dag, limit: int = 144) -> List[Tuple[int, int]]:
    """A deterministic grid sample of active cells (corners included)."""
    h, w = dag.height, dag.width
    steps = max(1, int(limit**0.5))
    ivals = sorted({0, h - 1, *(r * (h - 1) // max(1, steps - 1) for r in range(steps))})
    jvals = sorted({0, w - 1, *(c * (w - 1) // max(1, steps - 1) for c in range(steps))})
    cells = []
    for i in ivals:
        for j in jvals:
            if dag.is_active(i, j):
                cells.append((i, j))
    return cells[:limit]


def _reachable_exprs(ir: ComputeIR, i: int, j: int, app) -> List[Expr]:
    """Exprs (guards included) of cases that may fire at cell (i, j)."""
    out: List[Expr] = []
    for guard, value in ir.cases:
        if guard is None:
            out.append(value)
            return out
        try:
            taken = bool(eval_expr(guard, i, j, app))
        except _NeedsDep:
            out.append(guard)
            out.append(value)
            continue
        if taken:
            out.append(value)
            return out
    return out


def _collect_reads(e: Expr, i: int, j: int, app, out: List[Expr]) -> None:
    """Collect DepRead/Present nodes that may actually execute at (i, j).

    Respects inner guards when they evaluate with data alone: a
    ``Cond`` only contributes its taken branch and a ``Reduce`` only its
    live candidates, which is what keeps guarded reads like MTP's
    ``i > 0 => dep[(i-1, j)]`` from tripping false DP404s on the border.
    """
    if isinstance(e, (DepRead, Present)):
        out.append(e)
        if isinstance(e, DepRead) and e.default is not None:
            _collect_reads(e.default, i, j, app, out)
        return
    if isinstance(e, Cond):
        try:
            taken = bool(eval_expr(e.test, i, j, app))
        except _NeedsDep:
            _collect_reads(e.test, i, j, app, out)
            _collect_reads(e.then, i, j, app, out)
            _collect_reads(e.orelse, i, j, app, out)
            return
        _collect_reads(e.then if taken else e.orelse, i, j, app, out)
        return
    if isinstance(e, Reduce):
        for g, x in e.items:
            if g is not None:
                try:
                    if not bool(eval_expr(g, i, j, app)):
                        continue
                except _NeedsDep:
                    _collect_reads(g, i, j, app, out)
            _collect_reads(x, i, j, app, out)
        return
    from dataclasses import fields as _fields

    for f in _fields(e):
        v = getattr(e, f.name)
        if isinstance(v, Expr):
            _collect_reads(v, i, j, app, out)
        elif isinstance(v, tuple):
            for item in v:
                if isinstance(item, Expr):
                    _collect_reads(item, i, j, app, out)


def probe_footprint(
    ir: ComputeIR,
    app,
    dag,
    limit: int = 144,
) -> List[str]:
    """Numerically cross-check the footprint against the declared DAG.

    For a sample of active cells, resolve every reachable dependency
    index with the app's real data and require each mandatory read to be
    declared by ``dag.get_dependency``; optional reads (``dep.get`` /
    scan presence) must be declared whenever in bounds and active.
    Returns human-readable problem strings (empty = consistent).
    """
    problems: List[str] = []
    h, w = dag.height, dag.width
    for i, j in sample_cells(dag, limit):
        declared = None
        for e in _reachable_exprs(ir, i, j, app):
            nodes: List[Expr] = []
            _collect_reads(e, i, j, app, nodes)
            for node in nodes:
                if not isinstance(node, (DepRead, Present)):
                    continue
                try:
                    ri = eval_expr(node.row, i, j, app)
                    rj = eval_expr(node.col, i, j, app)
                except _NeedsDep:  # pragma: no cover - indices are data-only
                    continue
                optional = isinstance(node, Present) or node.default is not None
                in_bounds = 0 <= ri < h and 0 <= rj < w
                if not in_bounds or not dag.is_active(ri, rj):
                    if optional:
                        continue
                    problems.append(
                        f"cell ({i}, {j}) reads ({ri}, {rj}) which is"
                        " outside the DAG"
                    )
                    continue
                if declared is None:
                    declared = {(d.i, d.j) for d in dag.get_dependency(i, j)}
                if (ri, rj) not in declared:
                    problems.append(
                        f"cell ({i}, {j}) reads ({ri}, {rj}) but the pattern"
                        f" declares only {sorted(declared)}"
                    )
        if len(problems) >= 5:
            break
    return problems
