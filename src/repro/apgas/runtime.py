"""The APGAS global runtime: ``at`` / ``async_at`` / ``finish``.

Exposes the three X10 constructs DPX10 is written against:

* ``at(p) S`` — synchronous remote execution: :meth:`GlobalRuntime.at`;
* ``async S`` at a place — :meth:`GlobalRuntime.async_at`;
* ``finish { ... }`` — :meth:`GlobalRuntime.finish`, a context manager that
  waits for quiescence of everything spawned inside it.

An X10 launch sets ``X10_NPLACES``/``X10_NTHREADS``; here the equivalents
are the ``nplaces`` and ``threads_per_place`` constructor arguments.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from repro.apgas.activity import Activity
from repro.apgas.engine import ExecutionEngine, InlineEngine, ThreadedEngine
from repro.apgas.network import NetworkModel
from repro.apgas.place import PlaceGroup
from repro.util.validation import require

__all__ = ["GlobalRuntime"]

_ENGINE_NAMES = ("inline", "threaded")


class GlobalRuntime:
    """Places + an execution engine + a network model.

    >>> rt = GlobalRuntime(nplaces=2)
    >>> out = []
    >>> with rt.finish():
    ...     rt.async_at(1, out.append, 42)
    >>> out
    [42]
    """

    def __init__(
        self,
        nplaces: int,
        engine: str = "inline",
        threads_per_place: int = 2,
        network: Optional[NetworkModel] = None,
    ) -> None:
        require(
            engine in _ENGINE_NAMES,
            f"engine must be one of {_ENGINE_NAMES}, got {engine!r}",
        )
        self.group = PlaceGroup(nplaces)
        self.network = network if network is not None else NetworkModel()
        self.engine: ExecutionEngine
        if engine == "inline":
            self.engine = InlineEngine(self.group)
        else:
            self.engine = ThreadedEngine(self.group, threads_per_place)

    @property
    def nplaces(self) -> int:
        return self.group.size

    # -- APGAS constructs -----------------------------------------------------
    def at(self, place_id: int, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` synchronously at ``place_id`` and return its value.

        Raises :class:`~repro.errors.DeadPlaceException` if the target place
        has failed.
        """
        place = self.group.check_alive(place_id)
        place.activities_run += 1
        return fn(*args)

    def async_at(self, place_id: int, fn: Callable[..., Any], *args: Any) -> None:
        """Spawn ``fn(*args)`` as an asynchronous activity at ``place_id``."""
        self.engine.submit(Activity(place_id, fn, args))

    @contextmanager
    def finish(self) -> Iterator[None]:
        """Wait for all activities spawned in the block (and their children)."""
        yield
        self.engine.run_all()

    # -- failure --------------------------------------------------------------
    def kill_place(self, place_id: int) -> None:
        """Simulate a node crash taking down ``place_id``."""
        self.group.kill(place_id)

    def shutdown(self) -> None:
        self.engine.shutdown()

    def __enter__(self) -> "GlobalRuntime":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
