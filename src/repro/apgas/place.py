"""Places: the partitioned halves of the APGAS model.

A place owns a slice of the global address space (``Place.storage``) and is
either alive or dead. Killing a place makes its storage unreachable — any
subsequent access raises :class:`~repro.errors.DeadPlaceException`, exactly
the observable Resilient X10 gives DPX10.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List

from repro.errors import AllPlacesDeadError, DeadPlaceException
from repro.util.validation import require

__all__ = ["Place", "PlaceGroup"]


class Place:
    """One APGAS place: local storage + alive flag + activity statistics."""

    def __init__(self, place_id: int) -> None:
        require(place_id >= 0, f"place id must be >= 0, got {place_id}")
        self.id = place_id
        self._alive = True
        self._storage: Dict[str, Any] = {}
        self._lock = threading.Lock()
        self.activities_run = 0

    @property
    def alive(self) -> bool:
        return self._alive

    def kill(self) -> None:
        """Mark the place dead and drop its partition of the address space."""
        with self._lock:
            self._alive = False
            self._storage.clear()

    def check_alive(self) -> None:
        """Raise :class:`DeadPlaceException` if this place has failed."""
        if not self._alive:
            raise DeadPlaceException(self.id)

    # -- partitioned storage ------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        self.check_alive()
        with self._lock:
            self._storage[key] = value

    def get(self, key: str) -> Any:
        self.check_alive()
        with self._lock:
            return self._storage[key]

    def pop(self, key: str, default: Any = None) -> Any:
        self.check_alive()
        with self._lock:
            return self._storage.pop(key, default)

    def __contains__(self, key: str) -> bool:
        self.check_alive()
        with self._lock:
            return key in self._storage

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "dead"
        return f"Place({self.id}, {state})"


class PlaceGroup:
    """An ordered set of places, analogous to X10's ``PlaceGroup``.

    Tracks which places are alive; iteration and ``alive_ids`` preserve
    the original ordering so distributions are deterministic.
    """

    def __init__(self, nplaces: int) -> None:
        require(nplaces >= 1, f"need at least one place, got {nplaces}")
        self._places: List[Place] = [Place(p) for p in range(nplaces)]

    # -- basic access --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._places)

    def __iter__(self) -> Iterator[Place]:
        return iter(self._places)

    def __getitem__(self, place_id: int) -> Place:
        return self._places[place_id]

    @property
    def size(self) -> int:
        return len(self._places)

    # -- liveness ------------------------------------------------------------
    def is_alive(self, place_id: int) -> bool:
        return self._places[place_id].alive

    def alive_ids(self) -> List[int]:
        """Ids of alive places, in id order."""
        return [p.id for p in self._places if p.alive]

    def alive_count(self) -> int:
        return sum(1 for p in self._places if p.alive)

    def kill(self, place_id: int) -> None:
        self._places[place_id].kill()

    def check_alive(self, place_id: int) -> Place:
        place = self._places[place_id]
        place.check_alive()
        return place

    def require_any_alive(self) -> None:
        if self.alive_count() == 0:
            raise AllPlacesDeadError("every place in the group has failed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlaceGroup(n={self.size}, alive={self.alive_count()})"
