"""Deterministic fault injection.

The paper evaluates recovery by killing a node "manually in the middle of
the execution". We reproduce that with a :class:`FaultPlan`: a declarative
trigger (after *k* vertex completions, or at a fraction of total progress,
or at a simulated-time instant) naming the place to kill. The
:class:`FaultInjector` is polled by the runtime's completion path and fires
each plan exactly once.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.util.validation import require

__all__ = ["FaultPlan", "FaultInjector"]


@dataclass(frozen=True)
class FaultPlan:
    """Kill ``place_id`` when a trigger condition is first met.

    Exactly one of ``after_completions`` / ``at_fraction`` / ``at_time``
    must be set:

    * ``after_completions`` — fire once the global finished-vertex counter
      reaches this value (real engines);
    * ``at_fraction`` — same, expressed as a fraction of the total vertex
      count (resolved when the injector is armed);
    * ``at_time`` — fire at this virtual time (simulated engine only).
    """

    place_id: int
    after_completions: Optional[int] = None
    at_fraction: Optional[float] = None
    at_time: Optional[float] = None

    def __post_init__(self) -> None:
        set_triggers = sum(
            x is not None
            for x in (self.after_completions, self.at_fraction, self.at_time)
        )
        require(set_triggers == 1, "a FaultPlan needs exactly one trigger")
        if self.at_fraction is not None:
            require(
                0.0 <= self.at_fraction <= 1.0,
                f"at_fraction must be in [0, 1], got {self.at_fraction}",
            )
        if self.after_completions is not None:
            require(
                self.after_completions >= 0,
                "after_completions must be >= 0",
            )


class FaultInjector:
    """Arms a set of :class:`FaultPlan` and reports which fire.

    Thread-safe; each plan fires at most once. Count-based plans are
    resolved against ``total_work`` (the active vertex count) so that
    ``at_fraction`` plans become ``after_completions`` thresholds.
    """

    def __init__(self, plans: Sequence[FaultPlan], total_work: int) -> None:
        require(total_work >= 0, "total_work must be >= 0")
        self._lock = threading.Lock()
        self._count_plans: List[tuple[int, FaultPlan]] = []
        self._time_plans: List[tuple[float, FaultPlan]] = []
        for plan in plans:
            if plan.at_time is not None:
                self._time_plans.append((plan.at_time, plan))
            elif plan.after_completions is not None:
                self._count_plans.append((plan.after_completions, plan))
            else:
                assert plan.at_fraction is not None
                threshold = int(plan.at_fraction * total_work)
                self._count_plans.append((threshold, plan))
        self._count_plans.sort(key=lambda t: t[0])
        self._time_plans.sort(key=lambda t: t[0])

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._count_plans) + len(self._time_plans)

    def resolved_thresholds(self) -> List[tuple[int, int]]:
        """Pending count triggers as ``(threshold, place_id)`` pairs.

        ``at_fraction`` plans appear with their resolved completion
        threshold (``int(fraction * total_work)`` — 0.0 resolves to 0 and
        fires on the first poll, 1.0 to ``total_work`` and fires only on
        the final completion).
        """
        with self._lock:
            return [(t, plan.place_id) for t, plan in self._count_plans]

    def poll_completions(self, completed: int) -> List[int]:
        """Return place ids whose count trigger has been reached."""
        fired: List[int] = []
        with self._lock:
            while self._count_plans and self._count_plans[0][0] <= completed:
                _, plan = self._count_plans.pop(0)
                fired.append(plan.place_id)
        return fired

    def poll_time(self, now: float) -> List[int]:
        """Return place ids whose time trigger has been reached."""
        fired: List[int] = []
        with self._lock:
            while self._time_plans and self._time_plans[0][0] <= now:
                _, plan = self._time_plans.pop(0)
                fired.append(plan.place_id)
        return fired

    def next_time_trigger(self) -> Optional[float]:
        """Earliest pending time trigger, for event-queue integration."""
        with self._lock:
            return self._time_plans[0][0] if self._time_plans else None
