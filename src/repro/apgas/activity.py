"""Activity records: the unit of asynchronous work (X10's ``async S``)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Tuple

__all__ = ["Activity"]

_activity_counter = itertools.count()


@dataclass
class Activity:
    """A scheduled closure bound to a place.

    ``fn`` runs "at" ``place_id``: the engine guarantees the target place is
    alive when the activity starts (raising
    :class:`~repro.errors.DeadPlaceException` otherwise) and accounts the
    run against that place's statistics.
    """

    place_id: int
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    id: int = field(default_factory=lambda: next(_activity_counter))

    def run(self) -> Any:
        return self.fn(*self.args)
