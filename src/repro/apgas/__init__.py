"""A miniature APGAS (Asynchronous Partitioned Global Address Space) substrate.

X10 realizes APGAS with *places* (OS processes holding a partition of the
global address space plus worker threads) and *activities* (lightweight
asynchronous tasks, ``async S``). DPX10 is built entirely on those two
concepts plus Resilient X10's dead-place signalling.

This package provides the same semantics in-process:

* :class:`~repro.apgas.place.Place` / :class:`~repro.apgas.place.PlaceGroup`
  — partitioned local storage with alive/dead state;
* :class:`~repro.apgas.runtime.GlobalRuntime` — ``at`` / ``async_at`` /
  ``finish`` constructs executed by a pluggable engine;
* :class:`~repro.apgas.engine.InlineEngine` — deterministic single-threaded
  execution (FIFO activity queue), used for tests and reproducible runs;
* :class:`~repro.apgas.engine.ThreadedEngine` — one worker pool per place,
  real concurrency;
* :class:`~repro.apgas.failure.FaultPlan` — deterministic fault injection
  producing :class:`~repro.errors.DeadPlaceException`;
* :class:`~repro.apgas.network.NetworkModel` — latency/bandwidth accounting
  for inter-place traffic.
"""

from repro.apgas.activity import Activity
from repro.apgas.engine import ExecutionEngine, InlineEngine, ThreadedEngine
from repro.apgas.failure import FaultInjector, FaultPlan
from repro.apgas.network import NetworkModel, NetworkStats
from repro.apgas.place import Place, PlaceGroup
from repro.apgas.runtime import GlobalRuntime

__all__ = [
    "Activity",
    "ExecutionEngine",
    "InlineEngine",
    "ThreadedEngine",
    "FaultInjector",
    "FaultPlan",
    "NetworkModel",
    "NetworkStats",
    "Place",
    "PlaceGroup",
    "GlobalRuntime",
]
