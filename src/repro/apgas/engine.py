"""Execution engines: how activities actually run.

X10 launches one OS process per place, each with ``X10_NTHREADS`` worker
threads. Inside one Python process we provide two faithful realizations of
the same semantics, behind a common interface:

* :class:`InlineEngine` — a deterministic FIFO activity queue drained by
  the calling thread. Activities interleave in submission order, so every
  run is bit-reproducible; this is the default for tests and examples.
* :class:`ThreadedEngine` — a real thread pool per place
  (``threads_per_place`` threads each), giving genuine concurrency and
  exercising all the locking in the DPX10 core.

Both check the target place is alive when an activity starts and account
the run against that place.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional

from repro.apgas.activity import Activity
from repro.apgas.place import PlaceGroup
from repro.errors import DeadPlaceException
from repro.util.validation import require

__all__ = ["ExecutionEngine", "InlineEngine", "ThreadedEngine"]


class ExecutionEngine(ABC):
    """Schedules activities onto places and waits for quiescence."""

    name: str

    def __init__(self, group: PlaceGroup) -> None:
        self.group = group
        #: observer invoked with the place id whenever an activity starts
        #: (after the liveness check). The chaos layer hooks this to
        #: jitter a throttled place's activity startup; tracing tools can
        #: hook it to watch scheduling. Must be cheap and thread-safe —
        #: the threaded engine calls it concurrently.
        self.on_activity_start: Optional[Callable[[int], None]] = None

    @abstractmethod
    def submit(self, activity: Activity) -> None:
        """Enqueue an activity. May be called from inside an activity."""

    @abstractmethod
    def run_all(self) -> None:
        """Block until every submitted activity (transitively) finished.

        Re-raises the first activity exception, preferring
        :class:`DeadPlaceException` so fault signals are not masked by
        secondary errors.
        """

    def shutdown(self) -> None:
        """Release engine resources. Idempotent."""

    # -- shared helpers -------------------------------------------------------
    def _start_activity(self, activity: Activity) -> None:
        place = self.group[activity.place_id]
        place.check_alive()
        place.activities_run += 1
        if self.on_activity_start is not None:
            self.on_activity_start(activity.place_id)

    @staticmethod
    def _pick_error(errors: List[BaseException]) -> Optional[BaseException]:
        for err in errors:
            if isinstance(err, DeadPlaceException):
                return err
        return errors[0] if errors else None


class InlineEngine(ExecutionEngine):
    """Deterministic single-threaded engine: FIFO queue, run-to-completion."""

    name = "inline"

    def __init__(self, group: PlaceGroup) -> None:
        super().__init__(group)
        self._queue: deque[Activity] = deque()

    def submit(self, activity: Activity) -> None:
        self._queue.append(activity)

    def run_all(self) -> None:
        errors: List[BaseException] = []
        while self._queue:
            activity = self._queue.popleft()
            try:
                self._start_activity(activity)
                activity.run()
            except BaseException as err:  # noqa: BLE001 - collected, re-raised
                errors.append(err)
        err = self._pick_error(errors)
        if err is not None:
            raise err


class ThreadedEngine(ExecutionEngine):
    """One thread pool per place, ``threads_per_place`` threads each."""

    name = "threaded"

    def __init__(self, group: PlaceGroup, threads_per_place: int = 2) -> None:
        super().__init__(group)
        require(threads_per_place >= 1, "threads_per_place must be >= 1")
        self.threads_per_place = threads_per_place
        self._pools = [
            ThreadPoolExecutor(
                max_workers=threads_per_place,
                thread_name_prefix=f"place-{p.id}",
            )
            for p in group
        ]
        self._pending = 0
        self._errors: List[BaseException] = []
        self._cond = threading.Condition()
        self._closed = False

    def submit(self, activity: Activity) -> None:
        with self._cond:
            require(not self._closed, "engine already shut down")
            self._pending += 1
        self._pools[activity.place_id].submit(self._run_one, activity)

    def _run_one(self, activity: Activity) -> None:
        try:
            self._start_activity(activity)
            activity.run()
        except BaseException as err:  # noqa: BLE001 - collected, re-raised
            with self._cond:
                self._errors.append(err)
        finally:
            with self._cond:
                self._pending -= 1
                if self._pending == 0:
                    self._cond.notify_all()

    def run_all(self) -> None:
        with self._cond:
            while self._pending > 0:
                self._cond.wait()
            errors, self._errors = self._errors, []
        err = self._pick_error(errors)
        if err is not None:
            raise err

    def shutdown(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
        for pool in self._pools:
            pool.shutdown(wait=True, cancel_futures=True)
