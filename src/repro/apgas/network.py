"""Inter-place network accounting.

In real engines (inline/threaded) nothing actually crosses a wire — all
places live in one address space — but DPX10's behaviour depends on *how
much* data moves between places: the minimum-communication scheduler ranks
candidate places by transfer volume, the FIFO cache exists to cut that
volume, and the simulator converts volume into time. ``NetworkModel``
centralizes both the cost function (latency ``alpha`` + ``bytes/beta``
bandwidth term, the standard postal model) and the traffic statistics.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.util.validation import require

__all__ = ["NetworkModel", "NetworkStats"]

# InfiniBand QDR-era defaults, matching the Tianhe-1A interconnect class.
DEFAULT_ALPHA_S = 2.0e-6  # per-message latency, seconds
DEFAULT_BETA_BPS = 3.2e9  # bandwidth, bytes/second


@dataclass
class NetworkStats:
    """Aggregate traffic counters, optionally per (src, dst) pair."""

    messages: int = 0
    bytes: int = 0
    #: message retransmissions (timeouts / modelled drops); stays 0 on a
    #: healthy network, feeds ``dpx10_msg_retries_total``
    retries: int = 0
    by_pair: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def record(self, src: int, dst: int, nbytes: int) -> None:
        self.messages += 1
        self.bytes += nbytes
        key = (src, dst)
        self.by_pair[key] = self.by_pair.get(key, 0) + nbytes


class NetworkModel:
    """Postal-model network: ``cost(n bytes) = alpha + n / beta`` seconds.

    Thread-safe: the threaded engine records transfers concurrently.
    Transfers where ``src == dst`` are local and cost nothing.
    """

    def __init__(
        self,
        alpha: float = DEFAULT_ALPHA_S,
        beta: float = DEFAULT_BETA_BPS,
    ) -> None:
        require(alpha >= 0, f"latency must be >= 0, got {alpha}")
        require(beta > 0, f"bandwidth must be > 0, got {beta}")
        self.alpha = alpha
        self.beta = beta
        self.stats = NetworkStats()
        self._lock = threading.Lock()

    def transfer_cost(self, nbytes: int, *, local: bool = False) -> float:
        """Modelled seconds to move ``nbytes`` between two places."""
        if local or nbytes == 0:
            return 0.0
        return self.alpha + nbytes / self.beta

    def record(self, src: int, dst: int, nbytes: int) -> float:
        """Record a transfer and return its modelled cost in seconds."""
        if src == dst:
            return 0.0
        with self._lock:
            self.stats.record(src, dst, nbytes)
        return self.transfer_cost(nbytes)

    def record_retry(self) -> None:
        """Count one retransmission (a lost or timed-out message)."""
        with self._lock:
            self.stats.retries += 1

    def reset(self) -> None:
        with self._lock:
            self.stats = NetworkStats()
