"""``ResilientDistArray``: X10's snapshot-based fault-tolerance baseline.

Resilient X10 ships a ``ResilientDistArray`` whose ``snapshot()`` copies
the whole array to stable storage and whose ``restore()`` rebuilds it over
the surviving places after a ``DeadPlaceException`` (Cunningham et al.,
PPoPP 2014 — reference [10] of the paper). DPX10 argues this is infeasible
for DP because the intermediate-result volume is huge, and replaces it
with the recovery protocol in :mod:`repro.core.recovery`; this class exists
as the comparison baseline.
"""

from __future__ import annotations

from repro.apgas.place import PlaceGroup
from repro.dist.dist import Dist
from repro.dist.dist_array import DistArray
from repro.dist.snapshot import SnapshotStore
from repro.errors import RecoveryError

__all__ = ["ResilientDistArray"]


class ResilientDistArray(DistArray):
    """A :class:`DistArray` with whole-array snapshot/restore."""

    def __init__(self, dist: Dist, group: PlaceGroup) -> None:
        super().__init__(dist, group)
        self._store = SnapshotStore()

    @property
    def snapshots_taken(self) -> int:
        return self._store.snapshots_taken

    @property
    def cells_copied_total(self) -> int:
        return self._store.cells_copied_total

    def snapshot(self) -> int:
        """Copy every set cell on every alive place to stable storage.

        Returns the number of cells copied (the snapshot cost driver).
        """
        cells = {}
        for pid in self.alive_home_ids():
            for coord, value in self.local_items(pid):
                cells[coord] = value
        self._store.store(cells)
        return len(cells)

    def restore(self, new_dist: Dist) -> "ResilientDistArray":
        """Rebuild over ``new_dist`` from the last snapshot.

        All progress since the snapshot is lost — that is the point of the
        comparison: the paper's recovery keeps the finished results still
        held by surviving places, while the snapshot baseline rolls
        everything back to the last checkpoint.
        """
        if not self._store.has_snapshot:
            raise RecoveryError("restore() called before any snapshot()")
        for pid in new_dist.place_ids:
            if not self.group.is_alive(pid):
                raise RecoveryError(f"new dist includes dead place {pid}")
        fresh = ResilientDistArray(new_dist, self.group)
        fresh._store = self._store
        for (i, j), value in self._store.load().items():
            fresh.set(i, j, value)
        return fresh
