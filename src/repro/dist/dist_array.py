"""``DistArray``: a value per region cell, partitioned across places.

This is the substrate DPX10 keeps its vertices in. The storage for each
place physically lives in that place's partition
(:class:`~repro.apgas.place.Place` storage), so killing a place makes its
cells unreachable and any access raises
:class:`~repro.errors.DeadPlaceException` — exactly the failure observable
the recovery protocol consumes.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Dict, Iterator, Tuple

from repro.apgas.place import PlaceGroup
from repro.dist.dist import Dist
from repro.errors import DistributionError

__all__ = ["DistArray"]

_array_counter = itertools.count()


class DistArray:
    """A distributed map ``(i, j) -> value`` over a :class:`Dist`.

    Cells start unset; :meth:`get` on an unset cell raises ``KeyError`` and
    on a dead home place raises ``DeadPlaceException``.
    """

    def __init__(self, dist: Dist, group: PlaceGroup) -> None:
        for pid in dist.place_ids:
            if pid >= group.size:
                raise DistributionError(
                    f"dist maps onto place {pid} but group has {group.size}"
                )
        self.dist = dist
        self.group = group
        self._key = f"distarray:{next(_array_counter)}"
        self._lock = threading.Lock()
        for pid in dist.place_ids:
            group.check_alive(pid).put(self._key, {})

    # -- element access ---------------------------------------------------------
    def _local_map(self, place_id: int) -> Dict[Tuple[int, int], Any]:
        return self.group.check_alive(place_id).get(self._key)

    def set(self, i: int, j: int, value: Any) -> None:
        pid = self.dist.place_of(i, j)
        local = self._local_map(pid)
        with self._lock:
            local[(i, j)] = value

    def get(self, i: int, j: int) -> Any:
        pid = self.dist.place_of(i, j)
        local = self._local_map(pid)
        with self._lock:
            return local[(i, j)]

    def contains(self, i: int, j: int) -> bool:
        pid = self.dist.place_of(i, j)
        local = self._local_map(pid)
        with self._lock:
            return (i, j) in local

    def home_of(self, i: int, j: int) -> int:
        return self.dist.place_of(i, j)

    # -- bulk access --------------------------------------------------------------
    def local_items(self, place_id: int) -> Iterator[Tuple[Tuple[int, int], Any]]:
        """Snapshot of the cells currently set at ``place_id``."""
        local = self._local_map(place_id)
        with self._lock:
            return iter(list(local.items()))

    def local_size(self, place_id: int) -> int:
        local = self._local_map(place_id)
        with self._lock:
            return len(local)

    def total_set(self) -> int:
        """Number of set cells across alive places."""
        return sum(self.local_size(pid) for pid in self.alive_home_ids())

    def alive_home_ids(self) -> list[int]:
        return [pid for pid in self.dist.place_ids if self.group.is_alive(pid)]
