"""2-D index regions (half-open rectangles) and their algebra.

Mirrors the rectangular case of X10's ``Region``: the DP matrices in the
paper are all dense 2-D grids, so a rectangle with split/intersect/contains
operations is the complete substrate the framework needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.util.validation import require

__all__ = ["Region2D"]


@dataclass(frozen=True)
class Region2D:
    """Half-open rectangle ``[row0, row1) x [col0, col1)``."""

    row0: int
    row1: int
    col0: int
    col1: int

    def __post_init__(self) -> None:
        require(self.row1 >= self.row0, f"row1 < row0 in {self!r}")
        require(self.col1 >= self.col0, f"col1 < col0 in {self!r}")

    @classmethod
    def of_shape(cls, height: int, width: int) -> "Region2D":
        """The region ``[0, height) x [0, width)``."""
        return cls(0, height, 0, width)

    # -- geometry -------------------------------------------------------------
    @property
    def height(self) -> int:
        return self.row1 - self.row0

    @property
    def width(self) -> int:
        return self.col1 - self.col0

    @property
    def size(self) -> int:
        return self.height * self.width

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    def contains(self, i: int, j: int) -> bool:
        return self.row0 <= i < self.row1 and self.col0 <= j < self.col1

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        """Row-major iteration over all (i, j) in the region."""
        for i in range(self.row0, self.row1):
            for j in range(self.col0, self.col1):
                yield (i, j)

    def intersect(self, other: "Region2D") -> Optional["Region2D"]:
        """The overlapping rectangle, or ``None`` if disjoint/empty."""
        r0 = max(self.row0, other.row0)
        r1 = min(self.row1, other.row1)
        c0 = max(self.col0, other.col0)
        c1 = min(self.col1, other.col1)
        if r0 >= r1 or c0 >= c1:
            return None
        return Region2D(r0, r1, c0, c1)

    # -- splitting (used by block distributions) --------------------------------
    def split_rows(self, parts: int) -> List["Region2D"]:
        """Split into ``parts`` row bands of near-equal height.

        The first ``height % parts`` bands get one extra row; empty bands
        are returned as empty regions so the result always has ``parts``
        entries (a place may legitimately own nothing).
        """
        require(parts >= 1, f"parts must be >= 1, got {parts}")
        base, extra = divmod(self.height, parts)
        out: List[Region2D] = []
        r = self.row0
        for k in range(parts):
            h = base + (1 if k < extra else 0)
            out.append(Region2D(r, r + h, self.col0, self.col1))
            r += h
        return out

    def split_cols(self, parts: int) -> List["Region2D"]:
        """Split into ``parts`` column bands of near-equal width."""
        require(parts >= 1, f"parts must be >= 1, got {parts}")
        base, extra = divmod(self.width, parts)
        out: List[Region2D] = []
        c = self.col0
        for k in range(parts):
            w = base + (1 if k < extra else 0)
            out.append(Region2D(self.row0, self.row1, c, c + w))
            c += w
        return out

    def tile(self, tile_h: int, tile_w: int) -> List[List["Region2D"]]:
        """Cover the region with a grid of tiles of at most the given shape.

        Returns tiles[ti][tj]; edge tiles are clipped to the region.
        """
        require(tile_h >= 1 and tile_w >= 1, "tile dims must be >= 1")
        rows: List[List[Region2D]] = []
        for r in range(self.row0, self.row1, tile_h):
            row: List[Region2D] = []
            for c in range(self.col0, self.col1, tile_w):
                row.append(
                    Region2D(
                        r,
                        min(r + tile_h, self.row1),
                        c,
                        min(c + tile_w, self.col1),
                    )
                )
            rows.append(row)
        return rows
