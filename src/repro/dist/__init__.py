"""Distributed-array substrate (X10's ``DistArray`` / ``Dist`` equivalents).

X10 programs describe *where* data lives with a ``Dist`` (a mapping from
array indices to places) and store it in a ``DistArray``. DPX10 keeps all
DAG vertices in a distributed array, spliced by column by default
(paper section VI-B), and its fault-tolerance story is a new recovery
protocol for distributed arrays (section VI-D) compared against X10's
snapshot-based ``ResilientDistArray`` — both are provided here.
"""

from repro.dist.dist import Dist
from repro.dist.dist_array import DistArray
from repro.dist.region import Region2D
from repro.dist.resilient import ResilientDistArray
from repro.dist.snapshot import SnapshotStore

__all__ = ["Dist", "DistArray", "Region2D", "ResilientDistArray", "SnapshotStore"]
