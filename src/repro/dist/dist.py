"""Distributions: mappings from 2-D indices to places (X10's ``Dist``).

The paper: "All vertices are stored in a distributed array (*DistArray*
class) ... How to distribute them among the places can be flexibly defined
by using a *Dist* structure. By default vertices are spliced and
distributed along with column." (section VI-B); the recovery example in
Figure 6 divides by row instead, and the Refinements section lets the user
supply a custom distribution for locality.

Provided kinds:

* ``block_cols`` — contiguous column bands (the paper's default);
* ``block_rows`` — contiguous row bands (Figure 6);
* ``cyclic_rows`` / ``cyclic_cols`` — round-robin striping;
* ``block_cyclic`` — fixed-size blocks dealt round-robin;
* ``custom`` — arbitrary user mapping function.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.dist.region import Region2D
from repro.errors import DistributionError
from repro.util.validation import require

__all__ = ["Dist"]

MapFn = Callable[[int, int], int]


def _check_places(place_ids: Sequence[int]) -> List[int]:
    ids = list(place_ids)
    require(len(ids) >= 1, "a Dist needs at least one place", DistributionError)
    require(len(set(ids)) == len(ids), "duplicate place ids in Dist", DistributionError)
    return ids


class Dist:
    """An immutable index→place mapping over a rectangular region.

    Construct via the classmethod factories; ``place_ids`` is the ordered
    list of places the distribution maps onto (normally the alive places of
    the group at creation time — recovery builds a new ``Dist`` over the
    survivors).
    """

    def __init__(
        self,
        region: Region2D,
        place_ids: Sequence[int],
        map_fn: MapFn,
        kind: str,
        partitions: Optional[Dict[int, List[Region2D]]] = None,
    ) -> None:
        require(
            len(place_ids) >= 1,
            "a Dist needs at least one place",
            DistributionError,
        )
        require(
            len(set(place_ids)) == len(place_ids),
            "duplicate place ids in Dist",
            DistributionError,
        )
        self.region = region
        self.place_ids: Tuple[int, ...] = tuple(place_ids)
        self._map_fn = map_fn
        self.kind = kind
        self._partitions = partitions

    # -- factories ------------------------------------------------------------
    @classmethod
    def block_rows(cls, region: Region2D, place_ids: Sequence[int]) -> "Dist":
        ids = _check_places(place_ids)
        bands = region.split_rows(len(ids))
        bounds = [b.row1 for b in bands]

        def map_fn(i: int, j: int) -> int:
            for k, hi in enumerate(bounds):
                if i < hi:
                    return ids[k]
            raise DistributionError(f"({i}, {j}) outside {region}")

        parts = {pid: [band] for pid, band in zip(ids, bands)}
        return cls(region, ids, map_fn, "block_rows", parts)

    @classmethod
    def block_cols(cls, region: Region2D, place_ids: Sequence[int]) -> "Dist":
        ids = _check_places(place_ids)
        bands = region.split_cols(len(ids))
        bounds = [b.col1 for b in bands]

        def map_fn(i: int, j: int) -> int:
            for k, hi in enumerate(bounds):
                if j < hi:
                    return ids[k]
            raise DistributionError(f"({i}, {j}) outside {region}")

        parts = {pid: [band] for pid, band in zip(ids, bands)}
        return cls(region, ids, map_fn, "block_cols", parts)

    @classmethod
    def cyclic_rows(cls, region: Region2D, place_ids: Sequence[int]) -> "Dist":
        ids = _check_places(place_ids)
        n = len(ids)
        r0 = region.row0

        def map_fn(i: int, j: int) -> int:
            return ids[(i - r0) % n]

        return cls(region, ids, map_fn, "cyclic_rows")

    @classmethod
    def cyclic_cols(cls, region: Region2D, place_ids: Sequence[int]) -> "Dist":
        ids = _check_places(place_ids)
        n = len(ids)
        c0 = region.col0

        def map_fn(i: int, j: int) -> int:
            return ids[(j - c0) % n]

        return cls(region, ids, map_fn, "cyclic_cols")

    @classmethod
    def block_cyclic(
        cls,
        region: Region2D,
        place_ids: Sequence[int],
        block_h: int,
        block_w: int,
    ) -> "Dist":
        """Blocks of ``block_h x block_w`` dealt round-robin in row-major order."""
        require(block_h >= 1 and block_w >= 1, "block dims must be >= 1")
        ids = _check_places(place_ids)
        n = len(ids)
        r0, c0 = region.row0, region.col0
        blocks_per_row = -(-region.width // block_w)  # ceil div

        def map_fn(i: int, j: int) -> int:
            bi = (i - r0) // block_h
            bj = (j - c0) // block_w
            return ids[(bi * blocks_per_row + bj) % n]

        return cls(region, ids, map_fn, "block_cyclic")

    @classmethod
    def block_flat(cls, region: Region2D, place_ids: Sequence[int]) -> "Dist":
        """Contiguous row-major cell ranges of near-equal size.

        This is the cell-balanced redistribution the paper's Figure 6 shows
        after a failure: 12 vertices over 2 survivors become 6 cells each,
        splitting a row between places where needed.
        """
        ids = _check_places(place_ids)
        n = len(ids)
        total = region.size
        base, extra = divmod(total, n)
        # place k owns flat indices [starts[k], starts[k+1])
        starts = [0]
        for k in range(n):
            starts.append(starts[-1] + base + (1 if k < extra else 0))
        width = region.width
        r0, c0 = region.row0, region.col0

        def map_fn(i: int, j: int) -> int:
            flat = (i - r0) * width + (j - c0)
            # binary search over at most a handful of places is overkill;
            # linear scan keeps it simple and the place count small
            for k in range(n):
                if flat < starts[k + 1]:
                    return ids[k]
            raise DistributionError(f"({i}, {j}) outside {region}")

        return cls(region, ids, map_fn, "block_flat")

    @classmethod
    def custom(
        cls,
        region: Region2D,
        place_ids: Sequence[int],
        map_fn: MapFn,
    ) -> "Dist":
        """A user-supplied mapping (the Refinements 'Distribution of DAG')."""
        ids = _check_places(place_ids)
        valid = frozenset(ids)

        def checked(i: int, j: int) -> int:
            pid = map_fn(i, j)
            if pid not in valid:
                raise DistributionError(
                    f"custom map sent ({i}, {j}) to non-member place {pid}"
                )
            return pid

        return cls(region, ids, checked, "custom")

    @classmethod
    def make(
        cls,
        kind: str,
        region: Region2D,
        place_ids: Sequence[int],
        block_h: int = 1,
        block_w: int = 1,
    ) -> "Dist":
        """Build a distribution by kind name (used by config and recovery)."""
        factories = {
            "block_rows": lambda: cls.block_rows(region, place_ids),
            "block_cols": lambda: cls.block_cols(region, place_ids),
            "block_flat": lambda: cls.block_flat(region, place_ids),
            "cyclic_rows": lambda: cls.cyclic_rows(region, place_ids),
            "cyclic_cols": lambda: cls.cyclic_cols(region, place_ids),
            "block_cyclic": lambda: cls.block_cyclic(
                region, place_ids, block_h, block_w
            ),
        }
        require(
            kind in factories,
            f"unknown distribution kind {kind!r}; known: {sorted(factories)}",
            DistributionError,
        )
        return factories[kind]()

    # -- queries --------------------------------------------------------------
    def place_of(self, i: int, j: int) -> int:
        """The home place of cell (i, j)."""
        if not self.region.contains(i, j):
            raise DistributionError(f"({i}, {j}) outside {self.region}")
        return self._map_fn(i, j)

    @property
    def nplaces(self) -> int:
        return len(self.place_ids)

    def partitions(self, place_id: int) -> Optional[List[Region2D]]:
        """Rectangular partitions owned by ``place_id`` for block kinds.

        ``None`` for kinds without a rectangular decomposition (cyclic,
        custom); use :meth:`owned_coords` instead.
        """
        if self._partitions is None:
            return None
        return list(self._partitions.get(place_id, []))

    def owned_coords(self, place_id: int) -> Iterator[Tuple[int, int]]:
        """All cells homed at ``place_id``, in row-major order."""
        if self._partitions is not None:
            for part in self._partitions.get(place_id, []):
                yield from part
            return
        for i, j in self.region:
            if self._map_fn(i, j) == place_id:
                yield (i, j)

    def owned_count(self, place_id: int) -> int:
        if self._partitions is not None:
            return sum(p.size for p in self._partitions.get(place_id, []))
        return sum(1 for _ in self.owned_coords(place_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dist({self.kind}, region={self.region}, places={self.place_ids})"
