"""Stable snapshot storage for the resilient-array baseline.

Models Resilient X10's snapshot target: a store that survives place
failures (in X10, replicated or on place 0 / disk). Snapshot volume is
tracked so the ablation benchmark can show why the paper rejects periodic
snapshots for DP workloads ("a large volume of intermediate results may be
produced in the progress of computing", section VI-D).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

__all__ = ["SnapshotStore"]

Coord = Tuple[int, int]


class SnapshotStore:
    """Holds the most recent full snapshot of a distributed array."""

    def __init__(self) -> None:
        self._data: Optional[Dict[Coord, Any]] = None
        self.snapshots_taken = 0
        self.cells_copied_total = 0

    @property
    def has_snapshot(self) -> bool:
        return self._data is not None

    def store(self, cells: Dict[Coord, Any]) -> None:
        """Replace the current snapshot with a copy of ``cells``."""
        self._data = dict(cells)
        self.snapshots_taken += 1
        self.cells_copied_total += len(cells)

    def load(self) -> Dict[Coord, Any]:
        """A copy of the last snapshot (empty if none was ever taken)."""
        return dict(self._data) if self._data is not None else {}

    def last_snapshot_size(self) -> int:
        return len(self._data) if self._data is not None else 0
