"""Shared harness code for the figure-reproduction benchmarks.

:mod:`repro.bench.figures` has one entry point per evaluation figure
(Figures 10-13); :mod:`repro.bench.formatting` renders the series the way
the paper plots them. The ``benchmarks/`` directory wires these into
pytest-benchmark targets.
"""

from repro.bench.figures import (
    SCALES,
    fig10_scalability,
    fig11_size_scaling,
    fig12_overhead,
    fig13_recovery,
    sim_dag_for,
)
from repro.bench.formatting import format_series, write_series
from repro.bench.sweep import Sweep, to_csv

__all__ = [
    "Sweep",
    "to_csv",
    "SCALES",
    "fig10_scalability",
    "fig11_size_scaling",
    "fig12_overhead",
    "fig13_recovery",
    "sim_dag_for",
    "format_series",
    "write_series",
]
