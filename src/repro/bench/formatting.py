"""Rendering figure series as aligned text tables."""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

__all__ = ["format_series", "write_series"]


def format_series(
    title: str,
    col_header: str,
    columns: Sequence[object],
    rows: Dict[str, Sequence[float]],
    unit: str = "s",
    precision: int = 2,
) -> str:
    """One labelled row per series, one column per sweep point.

    >>> out = format_series("demo", "nodes", [2, 4], {"app": [1.0, 0.5]})
    >>> "nodes=2" in out and "1.00 s" in out and "0.50 s" in out
    True
    """
    width = max(10, precision + 8)
    lines: List[str] = [title, ""]
    header = f"{'series':<15s} | " + " | ".join(
        f"{col_header}={c!s:<{width - len(col_header) - 1}}" for c in columns
    )
    lines.append(header.rstrip())
    lines.append("-" * 16 + "+" + "+".join(["-" * (width + 2)] * len(columns)))
    for name, values in rows.items():
        cells = " | ".join(f"{v:.{precision}f} {unit:<{width - precision - 4}}" for v in values)
        lines.append(f"{name:<15s} | {cells}".rstrip())
    return "\n".join(lines)


def write_series(path: str, content: str) -> None:
    """Write a rendered table to ``path``, creating parent directories."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content.rstrip() + "\n")
