"""Figure-by-figure reproduction runners (paper section VIII).

Each function regenerates one evaluation figure's data series on the
simulated Tianhe-1A cluster. Two scales:

* ``small`` — the same sweeps at ~10^6-vertex sizes; seconds to run, used
  by CI and the default benchmark invocation;
* ``paper`` — the paper's actual parameters (10^8-10^9 vertices, 2-12
  nodes); a few minutes, enabled with ``REPRO_SCALE=paper``.

The *shape* claims (speedup factors, linearity, overhead ratio bands,
recovery halving) hold at both scales; EXPERIMENTS.md records the
paper-scale numbers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.core.dag import Dag
from repro.patterns import DiagonalDag, GridDag, IntervalDag
from repro.patterns.knapsack import KnapsackDag
from repro.sim.cluster import ClusterSpec
from repro.sim.costmodel import CostModel
from repro.sim.engine import simulate, simulate_with_fault
from repro.util.rng import seeded_rng
from repro.util.validation import require

__all__ = [
    "SCALES",
    "sim_dag_for",
    "fig10_scalability",
    "fig11_size_scaling",
    "fig12_overhead",
    "fig13_recovery",
]

#: sweep parameters per scale. "small" shrinks the matrix edge ~9x and
#: scales the per-fetch stall and tile size by the same linear factor, so
#: the boundary-to-interior and pipeline-to-work ratios — and therefore
#: the figure *shapes* — match the paper-scale runs while finishing in
#: seconds.
SCALES: Dict[str, Dict[str, object]] = {
    "small": {
        "fig10_vertices": 4_000_000,
        "fig11_vertices": [1_000_000, 3_000_000, 6_000_000, 10_000_000],
        "fig12_vertices": [1_000_000, 3_000_000, 5_000_000],
        "fig13_vertices": [1_000_000, 3_000_000, 5_000_000],
        "tile_size": 11,
        # edge ratio: sqrt(4e6) / sqrt(3e8)
        "t_msg_scale": 0.115,
    },
    "paper": {
        "fig10_vertices": 300_000_000,
        "fig11_vertices": [
            100_000_000,
            300_000_000,
            600_000_000,
            1_000_000_000,
        ],
        "fig12_vertices": [100_000_000, 300_000_000, 500_000_000],
        "fig13_vertices": [100_000_000, 300_000_000, 500_000_000],
        "tile_size": 96,
        "t_msg_scale": 1.0,
    },
}


def _cost_for(app: str, scale: str) -> CostModel:
    from dataclasses import replace

    cost = CostModel.for_app(app)
    # stencil communication is boundary-proportional (~matrix edge), so a
    # geometry-preserving downscale shrinks t_msg with the edge; knapsack's
    # scattered fetches are volume-proportional — already scale-free —
    # so its t_msg stays put
    factor = float(_scale(scale)["t_msg_scale"])  # type: ignore[arg-type]
    if factor != 1.0 and app != "knapsack":
        cost = replace(cost, t_msg=cost.t_msg * factor)
    return cost

FIG10_NODES = [2, 4, 6, 8, 10, 12]
FIG10_APPS = ["swlag", "mtp", "lps", "knapsack"]


def sim_dag_for(app: str, vertices: int, seed: int = 0) -> Dag:
    """A paper-shaped DAG with ~``vertices`` active cells for ``app``.

    SWLAG/MTP use square dense matrices; LPS a square matrix whose upper
    triangle holds the vertices; 0/1KP a square items x capacity matrix
    with random weights averaging ``knapsack_weight_fraction`` of the
    capacity (matching the cost model's communication estimate).
    """
    n = max(2, int(math.isqrt(vertices)))
    if app in ("swlag", "sw"):
        return DiagonalDag(n, n)
    if app == "mtp":
        return GridDag(n, n)
    if app == "lps":
        m = max(2, int((math.isqrt(8 * vertices + 1) - 1) // 2))
        return IntervalDag(m, m)
    if app == "knapsack":
        capacity = n
        frac = CostModel.for_app("knapsack").knapsack_weight_fraction
        max_w = max(2, int(2 * frac * capacity))
        rng = seeded_rng(seed, "bench-knapsack", vertices)
        weights = [int(w) for w in rng.integers(1, max_w + 1, size=n - 1)]
        return KnapsackDag(weights, capacity)
    require(False, f"unknown app {app!r}")
    raise AssertionError  # unreachable


def _scale(scale: str) -> Dict[str, object]:
    require(scale in SCALES, f"unknown scale {scale!r}; known: {sorted(SCALES)}")
    return SCALES[scale]


def fig10_scalability(
    scale: str = "small",
    apps: List[str] = FIG10_APPS,
    nodes_list: List[int] = FIG10_NODES,
) -> Dict[str, Dict[int, float]]:
    """Figure 10: execution time vs node count at a fixed vertex count.

    Returns ``{app: {nodes: seconds}}``.
    """
    params = _scale(scale)
    vertices = int(params["fig10_vertices"])  # type: ignore[arg-type]
    tile = int(params["tile_size"])  # type: ignore[arg-type]
    out: Dict[str, Dict[int, float]] = {}
    for app in apps:
        cost = _cost_for(app, scale)
        dag = sim_dag_for(app, vertices)
        out[app] = {
            nodes: simulate(dag, ClusterSpec.tianhe1a(nodes), cost, tile_size=tile).makespan
            for nodes in nodes_list
        }
    return out


def fig11_size_scaling(
    scale: str = "small",
    apps: List[str] = FIG10_APPS,
    nodes: int = 10,
) -> Dict[str, Dict[int, float]]:
    """Figure 11: execution time vs vertex count on 10 nodes (120 cores).

    Returns ``{app: {vertices: seconds}}``.
    """
    params = _scale(scale)
    sizes: List[int] = list(params["fig11_vertices"])  # type: ignore[arg-type]
    tile = int(params["tile_size"])  # type: ignore[arg-type]
    cluster = ClusterSpec.tianhe1a(nodes)
    out: Dict[str, Dict[int, float]] = {}
    for app in apps:
        cost = _cost_for(app, scale)
        out[app] = {
            v: simulate(sim_dag_for(app, v), cluster, cost, tile_size=tile).makespan
            for v in sizes
        }
    return out


def fig12_overhead(
    scale: str = "small",
    nodes_list: List[int] = [4, 8],
) -> Dict[int, Dict[int, Tuple[float, float, float]]]:
    """Figure 12: DPX10 vs hand-written X10 SWLAG, cache disabled.

    Returns ``{nodes: {vertices: (dpx10_s, native_s, ratio)}}``.
    """
    params = _scale(scale)
    sizes: List[int] = list(params["fig12_vertices"])  # type: ignore[arg-type]
    tile = int(params["tile_size"])  # type: ignore[arg-type]
    cost = _cost_for("swlag", scale).cacheless()
    out: Dict[int, Dict[int, Tuple[float, float, float]]] = {}
    for nodes in nodes_list:
        cluster = ClusterSpec.tianhe1a(nodes)
        row: Dict[int, Tuple[float, float, float]] = {}
        for v in sizes:
            dag = sim_dag_for("swlag", v)
            t_dpx10 = simulate(dag, cluster, cost, tile_size=tile).makespan
            t_native = simulate(dag, cluster, cost.native(), tile_size=tile).makespan
            row[v] = (t_dpx10, t_native, t_dpx10 / t_native)
        out[nodes] = row
    return out


def fig13_recovery(
    scale: str = "small",
    nodes_list: List[int] = [4, 8],
    at_fraction: float = 0.5,
) -> Dict[int, Dict[int, Tuple[float, float]]]:
    """Figure 13: recovery time (a) and normalized one-fault time (b).

    SWLAG with a node killed mid-run ("the failure was triggered manually
    in the middle of the execution"). Returns
    ``{nodes: {vertices: (recovery_seconds, normalized_total)}}``.
    """
    params = _scale(scale)
    sizes: List[int] = list(params["fig13_vertices"])  # type: ignore[arg-type]
    tile = int(params["tile_size"])  # type: ignore[arg-type]
    cost = _cost_for("swlag", scale)
    out: Dict[int, Dict[int, Tuple[float, float]]] = {}
    for nodes in nodes_list:
        cluster = ClusterSpec.tianhe1a(nodes)
        row: Dict[int, Tuple[float, float]] = {}
        for v in sizes:
            r = simulate_with_fault(
                sim_dag_for("swlag", v),
                cluster,
                cost,
                fail_node=nodes - 1,
                at_fraction=at_fraction,
                tile_size=tile,
            )
            row[v] = (r.recovery_seconds, r.normalized)
        out[nodes] = row
    return out
