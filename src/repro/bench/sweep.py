"""Structured parameter sweeps with CSV output.

The figure harnesses hard-code the paper's sweeps; this utility is for
the follow-up experiments a user runs next ("what if I vary cache size
*and* scheduler?"). A :class:`Sweep` takes named parameter axes, runs a
callable over the cartesian grid, collects per-point metrics, and renders
CSV for external plotting.

>>> sweep = Sweep(axes={"n": [2, 4]}, run=lambda n: {"t": 1.0 / n})
>>> rows = sweep.execute()
>>> rows[0]["t"]
0.5
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence

from repro.util.validation import require

__all__ = ["Sweep", "to_csv"]


@dataclass
class Sweep:
    """A cartesian parameter grid over a run callable.

    ``run`` is invoked once per grid point with the axis values as keyword
    arguments and must return a mapping of metric name -> value. Each
    result row contains the parameters plus the metrics.
    """

    axes: Mapping[str, Sequence[Any]]
    run: Callable[..., Mapping[str, Any]]
    results: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        require(len(self.axes) >= 1, "a sweep needs at least one axis")
        for name, values in self.axes.items():
            require(len(list(values)) >= 1, f"axis {name!r} is empty")

    @property
    def size(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(list(values))
        return n

    def points(self) -> List[Dict[str, Any]]:
        """The grid points in axis-declaration order."""
        names = list(self.axes)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.axes[n] for n in names))
        ]

    def execute(self) -> List[Dict[str, Any]]:
        """Run every grid point; returns (and stores) the result rows."""
        self.results = []
        for point in self.points():
            metrics = self.run(**point)
            row = dict(point)
            overlap = set(row) & set(metrics)
            require(not overlap, f"metric names collide with axes: {overlap}")
            row.update(metrics)
            self.results.append(row)
        return self.results


def to_csv(rows: Sequence[Mapping[str, Any]]) -> str:
    """Render result rows as CSV (stable column order from the first row)."""
    require(len(rows) >= 1, "no rows to render")
    columns = list(rows[0])
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(_csv_cell(row.get(c, "")) for c in columns))
    return "\n".join(lines) + "\n"


def _csv_cell(value: Any) -> str:
    text = f"{value:.6g}" if isinstance(value, float) else str(value)
    if any(ch in text for ch in ',"\n'):
        text = '"' + text.replace('"', '""') + '"'
    return text
