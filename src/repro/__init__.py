"""DPX10 reproduction: a DAG-pattern-driven distributed DP framework.

Python reproduction of *DPX10: An Efficient X10 Framework for Dynamic
Programming Applications* (Wang, Yu, Sun, Meng — ICPP 2015). A DP program
is a :class:`~repro.core.api.DPX10App` (``compute()`` + ``app_finished()``)
bound to a DAG pattern; the runtime handles distribution over places,
per-place worker scheduling, cross-place communication with a FIFO cache,
and transparent fault recovery.

Quickstart (the paper's Figure 1 example)::

    from repro import solve_lcs
    app, report = solve_lcs("ABC", "DBC")
    assert app.length == 2 and app.subsequence == "BC"

See ``examples/`` for fuller scenarios, ``DESIGN.md`` for the system
inventory, and ``EXPERIMENTS.md`` for the figure-by-figure reproduction.
"""

from repro.apgas.failure import FaultPlan
from repro.apps.banded_alignment import BandedEditDistanceApp, solve_banded_edit_distance
from repro.apps.common_substring import CommonSubstringApp, solve_common_substring
from repro.apps.cyk import CNFGrammar, CYKApp, solve_cyk
from repro.apps.edit_distance import EditDistanceApp, solve_edit_distance
from repro.apps.egg_drop import EggDropApp, EggDropDag, solve_egg_drop
from repro.apps.viterbi import ViterbiApp, make_hmm, solve_viterbi
from repro.apps.knapsack import KnapsackApp, make_knapsack_instance, solve_knapsack
from repro.apps.lcs import LCSApp, solve_lcs
from repro.apps.lps import LPSApp, solve_lps
from repro.apps.matrix_chain import MatrixChainApp, make_chain_dims, solve_matrix_chain
from repro.apps.needleman_wunsch import NWApp, solve_nw
from repro.apps.msa import MSA3App, make_msa3_instance, solve_msa3
from repro.apps.mtp import MTPApp, make_mtp_weights, solve_mtp
from repro.apps.smith_waterman import SWApp, SWLAGApp, solve_sw, solve_swlag
from repro.apps.tree_knapsack import (
    TreeKnapsackApp,
    make_tree_instance,
    solve_tree_knapsack,
)
from repro.apps.tree_mis import TreeMISApp, solve_tree_mis
from repro.apps.unbounded_knapsack import (
    UnboundedKnapsackApp,
    UnboundedKnapsackDag,
    solve_unbounded_knapsack,
)
from repro.chaos.schedule import ChaosSchedule
from repro.core.api import DPX10App, Vertex, VertexId, dependency_map
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.domain import (
    DomainApp,
    GridDomain,
    IndexDomain,
    TensorDomain,
    TreeDomain,
)
from repro.core.runtime import DPX10Runtime, RunReport
from repro.errors import DeadPlaceException, DependencyRaceError, DPX10Error
from repro.patterns import PATTERNS, get_pattern

__version__ = "1.0.0"

__all__ = [
    "FaultPlan",
    "ChaosSchedule",
    "BandedEditDistanceApp",
    "solve_banded_edit_distance",
    "CommonSubstringApp",
    "solve_common_substring",
    "CNFGrammar",
    "CYKApp",
    "solve_cyk",
    "EggDropApp",
    "EggDropDag",
    "solve_egg_drop",
    "ViterbiApp",
    "make_hmm",
    "solve_viterbi",
    "EditDistanceApp",
    "solve_edit_distance",
    "KnapsackApp",
    "make_knapsack_instance",
    "solve_knapsack",
    "LCSApp",
    "solve_lcs",
    "LPSApp",
    "solve_lps",
    "MatrixChainApp",
    "make_chain_dims",
    "solve_matrix_chain",
    "NWApp",
    "solve_nw",
    "MSA3App",
    "make_msa3_instance",
    "solve_msa3",
    "MTPApp",
    "make_mtp_weights",
    "solve_mtp",
    "TreeKnapsackApp",
    "make_tree_instance",
    "solve_tree_knapsack",
    "TreeMISApp",
    "solve_tree_mis",
    "SWApp",
    "SWLAGApp",
    "solve_sw",
    "solve_swlag",
    "UnboundedKnapsackApp",
    "UnboundedKnapsackDag",
    "solve_unbounded_knapsack",
    "DPX10App",
    "Vertex",
    "VertexId",
    "dependency_map",
    "DPX10Config",
    "Dag",
    "IndexDomain",
    "GridDomain",
    "TensorDomain",
    "TreeDomain",
    "DomainApp",
    "DPX10Runtime",
    "RunReport",
    "DeadPlaceException",
    "DependencyRaceError",
    "DPX10Error",
    "PATTERNS",
    "get_pattern",
    "__version__",
]
