"""Exception hierarchy for the DPX10 reproduction.

The names mirror the X10 / DPX10 concepts from the paper:
``DeadPlaceException`` is the Resilient-X10 signal that a place (an X10
process, here a simulated place) has failed; everything else is framework
level.
"""

from __future__ import annotations


class DPX10Error(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(DPX10Error):
    """An invalid :class:`~repro.core.config.DPX10Config` or argument."""


class PatternError(DPX10Error):
    """A DAG pattern violated a structural requirement (bounds, inverse)."""


class AnalysisError(DPX10Error):
    """A ``repro.analysis`` pass could not run (not a verdict about the
    analysed program — findings carry those)."""


class DependencyRaceError(DPX10Error):
    """The runtime sanitizer observed a dependency race.

    Raised by ``DPX10Config(sanitize=True)`` runs when ``compute()``
    reads a cell outside its declared dependency list (finding code
    DP301) or when a declared dependency is gathered before it finished
    (DP302 — the signature of an under-declared anti-dependency). The
    structured fields name the offending access precisely:

    ``code``
        ``"DP301"`` or ``"DP302"``.
    ``cell``
        The ``(i, j)`` cell that was read.
    ``reader``
        The cell whose ``compute()`` performed the read.
    ``offset``
        ``cell - reader`` — the undeclared offset.
    ``owner_place`` / ``exec_place``
        Where the read cell lives and where the compute ran.
    """

    def __init__(
        self,
        message: str,
        code: str = "DP301",
        cell: tuple | None = None,
        reader: tuple | None = None,
        offset: tuple | None = None,
        owner_place: int | None = None,
        exec_place: int | None = None,
    ) -> None:
        self.code = code
        self.cell = cell
        self.reader = reader
        self.offset = offset
        self.owner_place = owner_place
        self.exec_place = exec_place
        super().__init__(message)


class DistributionError(DPX10Error):
    """A :class:`~repro.dist.dist.Dist` does not tile its region correctly."""


class SchedulingError(DPX10Error):
    """A scheduler made an illegal placement decision."""


class RecoveryError(DPX10Error):
    """Fault recovery could not restore a consistent state."""


class SimulationError(DPX10Error):
    """The discrete-event cluster simulator hit an inconsistent state."""


class DeadPlaceException(DPX10Error):
    """Raised when code touches a place that has failed.

    Mirrors Resilient X10's ``DeadPlaceException``: any attempt to run an
    activity at, or read/write the partition of, a dead place raises this.
    The DPX10 runtime catches it and enters recovery mode (paper section
    VI-D).
    """

    def __init__(self, place_id: int, message: str | None = None) -> None:
        self.place_id = place_id
        super().__init__(message or f"place {place_id} is dead")


class UnrecoverableError(RecoveryError):
    """A failure the runtime cannot recover from.

    Raised (via its subclasses) instead of hanging or retrying when no
    viable recovery exists: place 0 died, or every place is gone. Chaos
    schedules that push the runtime past its fault budget must end in
    this, never in a deadlock.
    """


class AllPlacesDeadError(UnrecoverableError):
    """No alive place remains; recovery is impossible."""


class PlaceZeroDeadError(UnrecoverableError):
    """Place 0 died.

    The paper notes a limitation of Resilient X10: execution aborts if
    Place 0 is dead. We reproduce that behaviour faithfully by refusing to
    recover from a Place-0 failure.
    """

    def __init__(self) -> None:
        super().__init__(
            "place 0 is dead; Resilient X10 (and hence DPX10) cannot recover"
        )
