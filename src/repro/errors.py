"""Exception hierarchy for the DPX10 reproduction.

The names mirror the X10 / DPX10 concepts from the paper:
``DeadPlaceException`` is the Resilient-X10 signal that a place (an X10
process, here a simulated place) has failed; everything else is framework
level.
"""

from __future__ import annotations


class DPX10Error(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(DPX10Error):
    """An invalid :class:`~repro.core.config.DPX10Config` or argument."""


class PatternError(DPX10Error):
    """A DAG pattern violated a structural requirement (bounds, inverse)."""


class DistributionError(DPX10Error):
    """A :class:`~repro.dist.dist.Dist` does not tile its region correctly."""


class SchedulingError(DPX10Error):
    """A scheduler made an illegal placement decision."""


class RecoveryError(DPX10Error):
    """Fault recovery could not restore a consistent state."""


class SimulationError(DPX10Error):
    """The discrete-event cluster simulator hit an inconsistent state."""


class DeadPlaceException(DPX10Error):
    """Raised when code touches a place that has failed.

    Mirrors Resilient X10's ``DeadPlaceException``: any attempt to run an
    activity at, or read/write the partition of, a dead place raises this.
    The DPX10 runtime catches it and enters recovery mode (paper section
    VI-D).
    """

    def __init__(self, place_id: int, message: str | None = None) -> None:
        self.place_id = place_id
        super().__init__(message or f"place {place_id} is dead")


class AllPlacesDeadError(RecoveryError):
    """No alive place remains; recovery is impossible."""


class PlaceZeroDeadError(RecoveryError):
    """Place 0 died.

    The paper notes a limitation of Resilient X10: execution aborts if
    Place 0 is dead. We reproduce that behaviour faithfully by refusing to
    recover from a Place-0 failure.
    """

    def __init__(self) -> None:
        super().__init__(
            "place 0 is dead; Resilient X10 (and hence DPX10) cannot recover"
        )
