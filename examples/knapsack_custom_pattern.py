#!/usr/bin/env python3
"""Writing a custom DAG pattern — the paper's 0/1 Knapsack demo (§VII-B).

The built-in library covers stencil-shaped DP; Knapsack's second
dependency ``(i-1, j - w_i)`` jumps a data-dependent distance, so it needs
a custom pattern: subclass ``Dag`` and implement ``get_dependency`` /
``get_anti_dependency`` (exact inverses — ``validate()`` checks). This
example re-derives the pattern inline, mirroring the paper's Figure 9,
and solves a packing instance with it.

Run:  python examples/knapsack_custom_pattern.py
"""

from typing import List, Sequence

import numpy as np

from repro import DPX10App, DPX10Config, DPX10Runtime, VertexId, dependency_map
from repro.core.dag import Dag


class MyKnapsackDag(Dag):
    """The custom pattern, exactly as a DPX10 user would write it."""

    def __init__(self, weights: Sequence[int], capacity: int) -> None:
        self.weights = list(weights)
        self.capacity = capacity
        super().__init__(height=len(weights) + 1, width=capacity + 1)

    def get_dependency(self, i: int, j: int) -> List[VertexId]:
        if i == 0:
            return []
        w = self.weights[i - 1]
        deps = [VertexId(i - 1, j)]
        if w <= j:
            deps.append(VertexId(i - 1, j - w))
        return deps

    def get_anti_dependency(self, i: int, j: int) -> List[VertexId]:
        if i == self.height - 1:
            return []
        w = self.weights[i]
        anti = [VertexId(i + 1, j)]
        if j + w <= self.capacity:
            anti.append(VertexId(i + 1, j + w))
        return anti


class MyKnapsackApp(DPX10App[int]):
    value_dtype = np.int64

    def __init__(self, weights, values, capacity):
        self.weights, self.values, self.capacity = list(weights), list(values), capacity
        self.best = None

    def compute(self, i, j, vertices):
        if i == 0:
            return 0
        dep = dependency_map(vertices)
        w, v = self.weights[i - 1], self.values[i - 1]
        best_without = dep[(i - 1, j)]
        if w > j:
            return best_without
        return max(best_without, dep[(i - 1, j - w)] + v)

    def app_finished(self, dag):
        self.best = int(dag.get_vertex(len(self.weights), self.capacity).get_result())


def main() -> None:
    # the classic textbook instance
    weights = [1, 3, 4, 5, 2, 6]
    values = [1, 4, 5, 7, 3, 8]
    capacity = 12

    dag = MyKnapsackDag(weights, capacity)
    dag.validate()  # custom patterns should always validate before running
    print(f"pattern validated: {dag.height}x{dag.width} matrix, "
          f"{len(dag.active_cells())} vertices")

    app = MyKnapsackApp(weights, values, capacity)
    config = DPX10Config(nplaces=3, scheduler="mincomm", validate=False)
    report = DPX10Runtime(app, dag, config).run()

    print(f"best value within capacity {capacity}: {app.best}")
    print(f"vertices computed: {report.completions}, "
          f"cross-place bytes: {report.network_bytes}")

    # cross-check against the shipped implementation
    from repro import solve_knapsack

    shipped, _ = solve_knapsack(weights, values, capacity)
    assert shipped.best_value == app.best
    print(f"matches repro.solve_knapsack: {shipped.best_value} "
          f"(items {shipped.chosen_items})")


if __name__ == "__main__":
    main()
