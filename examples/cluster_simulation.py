#!/usr/bin/env python3
"""Paper-scale what-if on the simulated Tianhe-1A cluster.

Uses the discrete-event simulator to answer the questions the paper's
evaluation asks — how does SWLAG scale from 2 to 12 nodes at 300M
vertices, and what does one node failure cost — without needing 144
cores. (The real runtime executes the same scheduler logic; the simulator
swaps wall-clock for a calibrated cost model. See EXPERIMENTS.md.)

Run:  python examples/cluster_simulation.py           (scaled-down, seconds)
      REPRO_SCALE=paper python examples/cluster_simulation.py   (full size)
"""

import os

from repro.bench import fig10_scalability, fig13_recovery, format_series
from repro.bench.figures import FIG10_NODES, SCALES


def main() -> None:
    scale = os.environ.get("REPRO_SCALE", "small")
    vertices = SCALES[scale]["fig10_vertices"]
    print(f"scale={scale} ({vertices:,} vertices per run)\n")

    data = fig10_scalability(scale)
    print(format_series(
        "Execution time vs nodes (Figure 10)",
        "nodes",
        FIG10_NODES,
        {app: [series[n] for n in FIG10_NODES] for app, series in data.items()},
    ))
    print()
    for app, series in data.items():
        print(f"  {app:9s}: speedup 2->12 nodes = {series[2] / series[12]:.2f}x")

    print("\nOne node failure at 50% progress (Figure 13):")
    rec = fig13_recovery(scale)
    for nodes, row in rec.items():
        for v, (rec_s, norm) in row.items():
            print(f"  {nodes:2d} nodes, {v:>13,} vertices: "
                  f"recovery {rec_s:6.2f}s, total {norm:.2f}x the fault-free run")


if __name__ == "__main__":
    main()
