#!/usr/bin/env python3
"""A 2D/1D application: matrix-chain ordering on the triangular pattern.

The paper focuses on 2D/0D recurrences and notes that DPX10 "can also
express the type of 2D/iD (i >= 1), nonetheless, the performance is less
than satisfactory". This example shows both halves of that sentence: the
expressiveness (the full matrix-chain DP runs unmodified, faults included)
and the cost (per-vertex time and communication vs a 2D/0D app of the
same size).

Run:  python examples/matrix_chain_2d1d.py
"""

from repro import (
    DPX10Config,
    FaultPlan,
    make_chain_dims,
    solve_lcs,
    solve_matrix_chain,
)


def main() -> None:
    # the CLRS textbook chain
    dims = [30, 35, 15, 5, 10, 20, 25]
    app, _ = solve_matrix_chain(dims, DPX10Config(nplaces=3))
    print(f"chain dims {dims}")
    print(f"minimal multiplications: {app.min_multiplications} (expected 15125)\n")

    # expressiveness: a bigger chain, with a mid-run node failure
    dims = make_chain_dims(24, seed=9)
    plans = [FaultPlan(place_id=2, at_fraction=0.5)]
    app, report = solve_matrix_chain(dims, DPX10Config(nplaces=4), fault_plans=plans)
    print(f"24-matrix chain with one injected fault:")
    print(f"  minimal multiplications: {app.min_multiplications}")
    print(f"  recoveries: {report.recoveries}, recomputed: {report.recomputed}\n")

    # the cost: per-vertex time vs a 2D/0D app with the same vertex count
    n = 24
    _, rep_2d1d = solve_matrix_chain(make_chain_dims(n, seed=1), DPX10Config(nplaces=3))
    x = "A" * (n - 1)
    _, rep_2d0d = solve_lcs(x, x, DPX10Config(nplaces=3))
    t1 = rep_2d1d.wall_time / rep_2d1d.active_vertices
    t0 = rep_2d0d.wall_time / rep_2d0d.active_vertices
    print("per-vertex cost (same-order vertex counts):")
    print(f"  2D/1D triangular : {t1 * 1e6:8.1f} us/vertex")
    print(f"  2D/0D diagonal   : {t0 * 1e6:8.1f} us/vertex")
    print(f"  -> the paper's 'less than satisfactory' factor: {t1 / t0:.1f}x")


if __name__ == "__main__":
    main()
