#!/usr/bin/env python3
"""Transparent fault tolerance: killing a place mid-run (paper §VI-D).

Runs Smith-Waterman with an injected node failure at 50% progress. The
runtime catches the ``DeadPlaceException``, rebuilds the distributed DAG
over the survivors, restores what the surviving places still hold, resets
indegrees, and resumes — the answer is identical to the fault-free run.
Also shows the "copy" restore manner and the Resilient-X10 limitation
that Place 0's death is unrecoverable.

Run:  python examples/fault_tolerance.py
"""

from repro import DPX10Config, FaultPlan, solve_sw
from repro.errors import PlaceZeroDeadError
from repro.util.rng import seeded_rng


def main() -> None:
    rng = seeded_rng(7, "ft-example")
    x = "".join(rng.choice(list("ACGT"), size=150))
    y = "".join(rng.choice(list("ACGT"), size=150))

    print("== Fault-free baseline ==")
    app, report = solve_sw(x, y, DPX10Config(nplaces=4))
    baseline = app.best_score
    print(f"  best score {baseline}, {report.completions} vertices computed")

    print("\n== Node failure at 50% progress (default: discard remote results) ==")
    plans = [FaultPlan(place_id=2, at_fraction=0.5)]
    app, report = solve_sw(x, y, DPX10Config(nplaces=4), fault_plans=plans)
    stats = report.recovery_stats[0]
    print(f"  best score {app.best_score} (unchanged: {app.best_score == baseline})")
    print(f"  recoveries          : {report.recoveries}")
    print(f"  places left         : {report.final_alive_places}/4")
    print(f"  preserved in place  : {stats.preserved_in_place}")
    print(f"  discarded (recompute): {stats.discarded}")
    print(f"  extra recomputation : {report.recomputed} vertices")
    assert app.best_score == baseline

    print("\n== Same failure, restore_manner='copy' ==")
    cfg = DPX10Config(nplaces=4, restore_manner="copy")
    app, report = solve_sw(x, y, cfg, fault_plans=plans)
    stats = report.recovery_stats[0]
    print(f"  best score {app.best_score}, copied {stats.copied} results "
          f"across the network, recomputed only {report.recomputed}")
    assert app.best_score == baseline

    print("\n== The Resilient X10 limitation: Place 0 must survive ==")
    try:
        solve_sw(x, y, DPX10Config(nplaces=4),
                 fault_plans=[FaultPlan(place_id=0, at_fraction=0.5)])
    except PlaceZeroDeadError as exc:
        print(f"  caught as the paper describes: {exc}")


if __name__ == "__main__":
    main()
