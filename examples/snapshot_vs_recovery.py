#!/usr/bin/env python3
"""The two fault-tolerance mechanisms, head to head (paper §VI-D).

Runs the same faulting workload under the paper's recovery protocol and
under the Resilient-X10 periodic-snapshot baseline, at several checkpoint
densities, and prints the two ledgers that decide the argument:

* what each mechanism costs on a *fault-free* run (snapshots tax every
  execution; recovery costs nothing until a fault), and
* what one fault costs end to end (recompute volume vs checkpoint tax).

Run:  python examples/snapshot_vs_recovery.py
"""

from repro import DPX10Config, FaultPlan, solve_sw
from repro.util.rng import seeded_rng


def main() -> None:
    rng = seeded_rng(31, "ft-compare")
    x = "".join(rng.choice(list("ACGT"), size=130))
    y = "".join(rng.choice(list("ACGT"), size=130))
    plans = [FaultPlan(place_id=2, at_fraction=0.6)]

    print("== ledger 1: the fault-free run ==")
    _, clean = solve_sw(x, y, DPX10Config(nplaces=4))
    print(f"  recovery mode : 0 checkpoint cells (nothing until a fault)")
    for interval in (500, 2000):
        cfg = DPX10Config(nplaces=4, ft_mode="snapshot", snapshot_interval=interval)
        _, rep = solve_sw(x, y, cfg)
        print(f"  snapshot every {interval:4d} completions: "
              f"{rep.snapshots_taken} checkpoints, "
              f"{rep.snapshot_cells_copied:,} cells copied to stable storage")

    print("\n== ledger 2: one fault at 60% progress ==")
    app, rep = solve_sw(x, y, DPX10Config(nplaces=4), fault_plans=plans)
    baseline_score = app.best_score
    stats = rep.recovery_stats[0]
    print(f"  recovery mode : {stats.preserved_in_place:,} kept in place, "
          f"{stats.discarded:,} discarded, {rep.recomputed:,} recomputed, "
          f"0 cells ever checkpointed")
    for interval in (500, 2000):
        cfg = DPX10Config(nplaces=4, ft_mode="snapshot", snapshot_interval=interval)
        app, rep = solve_sw(x, y, cfg, fault_plans=plans)
        assert app.best_score == baseline_score
        stats = rep.recovery_stats[0]
        print(f"  snapshot every {interval:4d}: rolled back to "
              f"{stats.restored_from_snapshot:,} cells, "
              f"{rep.recomputed:,} recomputed, "
              f"{rep.snapshot_cells_copied:,} cells checkpointed along the way")

    print("\nthe paper's verdict: at DP volumes the checkpoint column is the"
          "\nproblem — it grows with intermediate state and is paid on every"
          "\nrun, faulty or not, which is why DPX10 replaces snapshots with"
          "\nits recovery protocol.")


if __name__ == "__main__":
    main()
