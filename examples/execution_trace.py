#!/usr/bin/env python3
"""Profiling a run with the execution trace.

Enables ``DPX10Config(trace=True)`` on a Smith-Waterman run and prints
what a performance engineer looks at first: per-place utilization, the
wavefront's completion profile (narrow at the corners, wide in the
middle), and an ASCII Gantt chart of place activity — then contrasts the
load profile of a balanced (diagonal) DAG with a skewed (triangular) one.

Run:  python examples/execution_trace.py
"""

from repro import DPX10Config, solve_lps, solve_sw
from repro.util.rng import seeded_rng


def main() -> None:
    rng = seeded_rng(11, "trace-example")
    x = "".join(rng.choice(list("ACGT"), size=120))
    y = "".join(rng.choice(list("ACGT"), size=120))

    cfg = DPX10Config(nplaces=4, trace=True)
    app, report = solve_sw(x, y, cfg)
    trace = report.trace
    print(f"Smith-Waterman {len(x)}x{len(y)}: best score {app.best_score}, "
          f"{len(trace)} vertices traced\n")

    print("per-place utilization:")
    for place, frac in trace.utilization().items():
        bar = "#" * int(frac * 40)
        print(f"  place {place}: {frac:6.1%} |{bar}")

    print("\nwavefront completion profile (vertices per time bucket):")
    profile = trace.completion_profile(buckets=15)
    peak = max(profile) or 1
    for k, count in enumerate(profile):
        print(f"  t{k:02d} {'*' * int(count / peak * 40):40s} {count}")

    print("\nplace activity (Gantt):")
    print(trace.render_gantt(width=56))

    # a skewed DAG for contrast: the LPS triangle loads later places more
    s = "".join(rng.choice(list("ABCD"), size=90))
    cfg = DPX10Config(nplaces=4, trace=True)
    _, rep_skew = solve_lps(s, cfg)
    print("\nskewed (triangular LPS) executed-per-place:",
          rep_skew.trace.executed_per_place())

    cfg = DPX10Config(nplaces=4, trace=True, work_stealing=True)
    _, rep_steal = solve_lps(s, cfg)
    print("same DAG with work stealing:               ",
          rep_steal.trace.executed_per_place())


if __name__ == "__main__":
    main()
