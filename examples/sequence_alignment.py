#!/usr/bin/env python3
"""Local sequence alignment with SWLAG — the paper's flagship workload.

Generates two related DNA sequences (one a mutated copy of the other),
aligns them with Smith-Waterman under linear+affine gap penalties (the
Gotoh recurrence, each vertex carrying an ``(H, E, F)`` triple), and
compares scheduling strategies' communication behaviour.

Run:  python examples/sequence_alignment.py
"""

import numpy as np

from repro import DPX10Config, solve_swlag
from repro.util.rng import seeded_rng


def mutate(seq: str, rate: float, rng: np.random.Generator) -> str:
    """Point mutations + occasional indels, to make alignment interesting."""
    bases = "ACGT"
    out = []
    for ch in seq:
        r = rng.random()
        if r < rate / 3:
            continue  # deletion
        if r < 2 * rate / 3:
            out.append(str(rng.choice(list(bases))))  # substitution
            continue
        if r < rate:
            out.append(ch)
            out.append(str(rng.choice(list(bases))))  # insertion
            continue
        out.append(ch)
    return "".join(out)


def main() -> None:
    rng = seeded_rng(2024, "alignment")
    reference = "".join(rng.choice(list("ACGT"), size=220))
    query = mutate(reference, rate=0.10, rng=rng)
    print(f"reference: {len(reference)} bp, query: {len(query)} bp\n")

    for scheduler in ("local", "mincomm"):
        config = DPX10Config(
            nplaces=4,
            scheduler=scheduler,
            distribution="block_cols",
            cache_size=128,
        )
        app, report = solve_swlag(
            reference, query, config, match=2, mismatch=-1, gap_open=-3, gap_extend=-1
        )
        print(f"scheduler={scheduler:8s} best local alignment score: {app.best_score}")
        print(f"  vertices: {report.completions}, "
              f"remote fetches: {report.network_messages}, "
              f"cache hit rate: {report.cache_hit_rate:.1%}, "
              f"wall: {report.wall_time:.2f}s")

    # sanity: a perfect self-alignment scores 2 * length
    app, _ = solve_swlag(reference, reference, DPX10Config(nplaces=2))
    assert app.best_score == 2 * len(reference)
    print(f"\nself-alignment check: {app.best_score} == 2 x {len(reference)} ✓")


if __name__ == "__main__":
    main()
