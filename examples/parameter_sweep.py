#!/usr/bin/env python3
"""Exploring the configuration space with the Sweep utility.

Grid-sweeps cache size x scheduler over a Smith-Waterman workload on the
real runtime, prints the CSV, and highlights the best communication
configuration — the follow-up experiment a user runs after reading the
paper's Refinements section.

Run:  python examples/parameter_sweep.py
"""

from repro import DPX10Config, solve_sw
from repro.bench import Sweep, to_csv
from repro.util.rng import seeded_rng


def main() -> None:
    rng = seeded_rng(99, "sweep-example")
    x = "".join(rng.choice(list("ACGT"), size=90))
    y = "".join(rng.choice(list("ACGT"), size=90))

    def run(cache_size: int, scheduler: str):
        cfg = DPX10Config(
            nplaces=4,
            cache_size=cache_size,
            scheduler=scheduler,
            distribution="block_rows",
            seed=1,
        )
        app, report = solve_sw(x, y, cfg)
        return {
            "score": app.best_score,
            "net_bytes": report.network_bytes,
            "hit_rate": round(report.cache_hit_rate, 3),
            "wall_s": round(report.wall_time, 3),
        }

    sweep = Sweep(
        axes={"cache_size": [0, 8, 64], "scheduler": ["local", "mincomm"]},
        run=run,
    )
    rows = sweep.execute()
    print(f"{sweep.size} configurations swept:\n")
    print(to_csv(rows))

    scores = {r["score"] for r in rows}
    assert len(scores) == 1, "every configuration must agree on the answer"
    best = min(rows, key=lambda r: r["net_bytes"])
    print(f"least communication: cache_size={best['cache_size']}, "
          f"scheduler={best['scheduler']} ({best['net_bytes']} bytes, "
          f"{best['hit_rate']:.0%} cache hits)")


if __name__ == "__main__":
    main()
