#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 walk-through, then a larger run.

Find the longest common subsequence of "ABC" and "DBC" with DPX10: pick
the built-in diagonal DAG pattern, implement ``compute()`` (done for you
in :class:`repro.LCSApp`), and run. The framework distributes the vertex
matrix over places, schedules the wavefront, and hands the bound DAG to
``app_finished()`` for backtracking.

Run:  python examples/quickstart.py
"""

from repro import DPX10Config, solve_lcs


def figure1_example() -> None:
    print("== Paper Figure 1: LCS of 'ABC' and 'DBC' ==")
    app, report = solve_lcs("ABC", "DBC")
    print(f"  LCS length   : {app.length}")
    print(f"  LCS          : {app.subsequence!r}")
    print(f"  vertices run : {report.completions}")
    assert app.subsequence == "BC"


def larger_run() -> None:
    print("\n== A 400x300 LCS across 4 places (threaded engine) ==")
    x = "ACGTGCA" * 57  # 399 chars
    y = "ACTGGCAT" * 37  # 296 chars
    config = DPX10Config(nplaces=4, engine="threaded", distribution="block_cols")
    app, report = solve_lcs(x, y, config)
    print(f"  LCS length        : {app.length}")
    print(f"  vertices computed : {report.completions}")
    print(f"  places            : {config.nplaces}")
    print(f"  cross-place bytes : {report.network_bytes}")
    print(f"  cache hit rate    : {report.cache_hit_rate:.1%}")
    print(f"  wall time         : {report.wall_time:.2f}s")


if __name__ == "__main__":
    figure1_example()
    larger_run()
