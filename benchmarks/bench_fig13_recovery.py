"""Figure 13: recovery cost and one-fault impact (SWLAG, 4 and 8 nodes).

Paper claims (a): "The time increases from 13 to 65 seconds on 4 nodes and
from 6 to 30 seconds on 8 nodes ... a good linear growth ... the time for
recovering on 8 nodes is half of it on 4 nodes"; (b): "the impact of one
failure reduces with the increase of the number of computing nodes".
"""

import os

import pytest

from repro.bench import fig13_recovery, format_series, write_series


def test_fig13a_recovery_linear_and_halved(benchmark, scale, results_dir):
    data = benchmark.pedantic(lambda: fig13_recovery(scale), rounds=1, iterations=1)
    sizes = sorted(data[4].keys())
    rec4 = [data[4][v][0] for v in sizes]
    rec8 = [data[8][v][0] for v in sizes]
    # linear growth: seconds per vertex constant across the sweep
    per_v4 = [data[4][v][0] / v for v in sizes]
    assert max(per_v4) / min(per_v4) < 1.05
    # 8-node recovery ~ half of 4-node (paper: parallel over alive places;
    # exactly 6/14 with 2 places per node)
    for a, b in zip(rec4, rec8):
        assert b == pytest.approx(a * 6 / 14, rel=0.02)
    write_series(
        os.path.join(results_dir, "fig13a_recovery_time.txt"),
        format_series(
            f"Figure 13(a): recovery seconds, {scale} scale",
            "V",
            sizes,
            {"4 nodes": rec4, "8 nodes": rec8},
        ),
    )


def test_fig13a_paper_scale_absolute_anchor(benchmark, scale):
    """At paper scale the absolute recovery times match the paper's prose."""
    if scale != "paper":
        pytest.skip("absolute anchor only checked at REPRO_SCALE=paper")
    data = benchmark.pedantic(lambda: fig13_recovery("paper"), rounds=1, iterations=1)
    assert data[4][100_000_000][0] == pytest.approx(13.0, rel=0.05)
    assert data[4][500_000_000][0] == pytest.approx(65.0, rel=0.05)
    assert data[8][500_000_000][0] == pytest.approx(30.0, rel=0.10)


def test_fig13b_impact_shrinks_with_nodes(benchmark, scale, results_dir):
    data = benchmark.pedantic(lambda: fig13_recovery(scale), rounds=1, iterations=1)
    sizes = sorted(data[4].keys())
    norm4 = [data[4][v][1] for v in sizes]
    norm8 = [data[8][v][1] for v in sizes]
    for a, b in zip(norm4, norm8):
        assert a > 1.0 and b > 1.0  # a fault always costs something
        assert b < a  # more nodes -> smaller relative impact
    write_series(
        os.path.join(results_dir, "fig13b_normalized.txt"),
        format_series(
            f"Figure 13(b): normalized one-fault execution time, {scale} scale",
            "V",
            sizes,
            {"4 nodes": norm4, "8 nodes": norm8},
            unit="x",
        ),
    )
