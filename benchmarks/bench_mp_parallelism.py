"""The mp engine delivers real multi-core parallelism.

Unlike the threaded engine (one GIL), place processes compute
concurrently. With a compute-heavy ``compute()`` the speedup is real and
measurable; with trivial DP cells the per-level IPC dominates — exactly
the granularity trade-off the paper's related-work section describes for
task-based systems.
"""

import numpy as np
import pytest

from repro.core.api import DPX10App, dependency_map
from repro.core.config import DPX10Config
from repro.core.runtime import DPX10Runtime
from repro.patterns import AntiDiagonalDag
from repro.util.timer import Timer


class HeavyApp(DPX10App[int]):
    """A deliberately compute-bound recurrence (~0.5 ms per vertex)."""

    value_dtype = np.int64
    WORK = 4_000

    def compute(self, i, j, vertices):
        dep = dependency_map(vertices)
        acc = sum(dep.values()) % 1_000_003
        for k in range(self.WORK):  # the "expensive cell" regime
            acc = (acc * 31 + k) % 1_000_003
        return acc


def _run(nplaces: int) -> float:
    # antidiag rows are wide (independent cells): plenty of level parallelism
    dag = AntiDiagonalDag(24, 24)
    cfg = DPX10Config(nplaces=nplaces, engine="mp")
    with Timer() as t:
        DPX10Runtime(HeavyApp(), dag, cfg).run()
    return t.elapsed


@pytest.mark.skipif(
    __import__("os").cpu_count() < 4, reason="needs >= 4 cores"
)
def test_mp_real_speedup_on_heavy_compute(benchmark):
    t1 = _run(1)
    t4 = benchmark.pedantic(lambda: _run(4), rounds=1, iterations=1)
    speedup = t1 / t4
    assert speedup > 1.5, f"expected real multi-core speedup, got {speedup:.2f}x"


def test_mp_answers_match_inline(benchmark):
    dag_mp = AntiDiagonalDag(12, 12)
    dag_inline = AntiDiagonalDag(12, 12)

    def run_both():
        DPX10Runtime(HeavyApp(), dag_mp, DPX10Config(nplaces=3, engine="mp")).run()
        DPX10Runtime(HeavyApp(), dag_inline, DPX10Config(nplaces=3)).run()
        return dag_mp, dag_inline

    a, b = benchmark.pedantic(run_both, rounds=1, iterations=1)
    for i in range(12):
        for j in range(12):
            assert a.get_vertex(i, j).get_result() == b.get_vertex(i, j).get_result()
