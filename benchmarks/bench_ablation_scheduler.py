"""Ablation: the three scheduling strategies (paper section VI-C).

"By default, we use a local scheduling strategy ... We also provided
another two methods: random scheduling and minimum communication
scheduling. [MinComm] introduces some extra overhead and should be used in
appropriate scenarios."

Measured on the real runtime: communication volume and wall time per
strategy on the same workload.
"""

import os

import pytest

from repro.apps.lcs import solve_lcs
from repro.bench import format_series, write_series
from repro.core.config import DPX10Config
from repro.util.rng import seeded_rng

STRATEGIES = ["local", "random", "mincomm"]


def _text(n, seed):
    return "".join(seeded_rng(seed, "sched").choice(list("ABCD"), size=n))


def test_scheduler_traffic_ordering(benchmark, results_dir):
    x, y = _text(90, 1), _text(90, 2)

    def sweep():
        out = {}
        for strat in STRATEGIES:
            cfg = DPX10Config(
                nplaces=4, scheduler=strat, seed=7, distribution="block_rows"
            )
            app, report = solve_lcs(x, y, cfg)
            out[strat] = (report.network_bytes, report.wall_time, app.length)
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # all strategies agree on the answer
    lengths = {v[2] for v in data.values()}
    assert len(lengths) == 1
    # random placement moves the most data; mincomm never beats local's
    # zero-fetch home placement by more than the write-back volume
    assert data["random"][0] > data["local"][0]
    assert data["mincomm"][0] <= data["random"][0]
    write_series(
        os.path.join(results_dir, "ablation_scheduler.txt"),
        format_series(
            "Ablation: scheduling strategy (LCS 90x90, 4 places, block rows)",
            "strategy",
            STRATEGIES,
            {
                "net bytes": [data[s][0] for s in STRATEGIES],
                "wall s": [data[s][1] for s in STRATEGIES],
            },
            unit="",
        ),
    )
