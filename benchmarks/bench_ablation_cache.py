"""Ablation: the worker's FIFO remote-vertex cache (Refinements: "Cache
size ... can be specified to achieve maximum benefit").

Real-runtime sweep: cross-place traffic and hit rate vs cache capacity;
simulated: cached vs cacheless makespan at cluster scale.
"""

import os

import pytest

from repro.apps.smith_waterman import solve_sw
from repro.bench import format_series, write_series
from repro.bench.figures import sim_dag_for
from repro.core.config import DPX10Config
from repro.sim import ClusterSpec, CostModel, simulate
from repro.util.rng import seeded_rng

CACHE_SIZES = [0, 2, 8, 64, 512]


def _dna(n, seed):
    return "".join(seeded_rng(seed, "cache-dna").choice(list("ACGT"), size=n))


def test_cache_size_sweep_real_runtime(benchmark, results_dir):
    x, y = _dna(100, 1), _dna(100, 2)

    def sweep():
        out = {}
        for size in CACHE_SIZES:
            cfg = DPX10Config(nplaces=4, cache_size=size, distribution="block_rows")
            _, report = solve_sw(x, y, cfg)
            out[size] = (report.network_bytes, report.cache_hit_rate)
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    bytes_series = [data[s][0] for s in CACHE_SIZES]
    hit_series = [data[s][1] for s in CACHE_SIZES]
    # no cache -> no hits; growing capacity never increases traffic
    assert data[0][1] == 0.0
    assert all(b >= a for a, b in zip(bytes_series[1:], bytes_series[:-1])) or (
        bytes_series == sorted(bytes_series, reverse=True)
    )
    assert bytes_series[-1] < bytes_series[0]
    assert hit_series[-1] > 0.3
    write_series(
        os.path.join(results_dir, "ablation_cache.txt"),
        format_series(
            "Ablation: FIFO cache capacity (SW 100x100, 4 places, block rows)",
            "capacity",
            CACHE_SIZES,
            {"net bytes": bytes_series, "hit rate": hit_series},
            unit="",
        ),
    )


def test_cache_simulated_makespan(benchmark, scale):
    cost = CostModel.for_app("swlag")
    dag = sim_dag_for("swlag", 4_000_000)
    cluster = ClusterSpec.tianhe1a(8)

    def run():
        cached = simulate(dag, cluster, cost, tile_size=16).makespan
        cacheless = simulate(dag, cluster, cost.cacheless(), tile_size=16).makespan
        return cached, cacheless

    cached, cacheless = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cached < cacheless
