"""Ablation: DAG distribution (the Refinements' "Distribution of DAG").

The paper's default splices by column; Figure 6's recovery example splits
by row, and the Figure 10(d) discussion blames 0/1KP's weaker scaling on
its dependency shape "given the same data distribution (divided by row)".
This benchmark measures how the splicing axis interacts with each
pattern's dependency directions — real-runtime communication volume and
simulated makespan.
"""

import os

import pytest

from repro.apps.knapsack import make_knapsack_instance, solve_knapsack
from repro.apps.mtp import make_mtp_weights, solve_mtp
from repro.bench import format_series, write_series
from repro.bench.figures import sim_dag_for
from repro.core.config import DPX10Config
from repro.sim import ClusterSpec, CostModel, simulate

DISTS = ["block_rows", "block_cols", "block_cyclic"]


def test_distribution_traffic_real_runtime(benchmark, results_dir):
    """Knapsack's two deps both point into the previous row, so row
    splicing pays only at band boundaries while column splicing pays for
    every jump ``(i-1, j-w)`` that leaves the band — the dependency-shape
    sensitivity behind the paper's "0/1KP requires more communications due
    to its dependency relationship"."""
    w, v = make_knapsack_instance(40, 60, seed=2)

    def sweep():
        out = {}
        for dist in DISTS:
            cfg = DPX10Config(
                nplaces=4, distribution=dist, dist_block=(4, 4), cache_size=0
            )
            app, rep = solve_knapsack(w, v, 60, cfg)
            out[dist] = (rep.network_bytes, app.best_value)
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    values = {v for _, v in data.values()}
    assert len(values) == 1  # distribution never changes the answer
    # the paper's default column splicing is the expensive axis for KP:
    # every data-dependent jump that leaves the column band is a fetch
    assert data["block_cols"][0] > data["block_rows"][0]
    write_series(
        os.path.join(results_dir, "ablation_distribution.txt"),
        format_series(
            "Ablation: distribution axis (0/1KP 41x61, 4 places, no cache)",
            "dist",
            DISTS,
            {"net bytes": [data[d][0] for d in DISTS]},
            unit="",
            precision=0,
        ),
    )


def test_distribution_grid_prefers_matching_axis(benchmark):
    """MTP's grid stencil is symmetric; row and column splicing should be
    near-equivalent (sanity for the axis handling)."""
    wd, wr = make_mtp_weights(40, 40, seed=4)

    def sweep():
        out = {}
        for dist in ("block_rows", "block_cols"):
            cfg = DPX10Config(nplaces=4, distribution=dist, cache_size=0)
            _, rep = solve_mtp(wd, wr, cfg)
            out[dist] = rep.network_bytes
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    hi, lo = max(data.values()), min(data.values())
    assert hi <= lo * 1.3  # symmetric stencil, near-symmetric traffic


def test_distribution_simulated_makespan(benchmark):
    cost = CostModel.for_app("swlag")
    dag = sim_dag_for("swlag", 4_000_000)
    cluster = ClusterSpec.tianhe1a(6)

    def sweep():
        return {
            dist: simulate(dag, cluster, cost, tile_size=24, dist=dist).makespan
            for dist in ("block_cols", "block_rows")
        }

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # the diagonal stencil crosses both axes: both splicings work, within 2x
    hi, lo = max(data.values()), min(data.values())
    assert hi < 2 * lo
