"""Extension benchmark: static vs dynamic scheduling.

Quantifies what the per-vertex indegree bookkeeping and ready-list traffic
cost — a concrete instance of the paper's overhead analysis (Figure 12
attributes DPX10's overhead to "DAG operations, worker management ...").
The static schedule skips all of it when the pattern's order is known.
"""

import os

import pytest

from repro.apps.lcs import solve_lcs
from repro.apps.serial import lcs_matrix
from repro.bench import format_series, write_series
from repro.core.config import DPX10Config
from repro.util.rng import seeded_rng
from repro.util.timer import Timer


def test_static_schedule_speedup(benchmark, results_dir):
    rng = seeded_rng(5, "static-bench")
    x = "".join(rng.choice(list("ACGT"), size=220))
    y = "".join(rng.choice(list("ACGT"), size=200))
    expect = int(lcs_matrix(x, y)[-1, -1])

    def run(static):
        cfg = DPX10Config(nplaces=3, static_schedule=static)
        with Timer() as t:
            app, _ = solve_lcs(x, y, cfg)
        assert app.length == expect
        return t.elapsed

    def sweep():
        return {"dynamic": run(False), "static": run(True)}

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    speedup = data["dynamic"] / data["static"]
    assert speedup > 1.15, f"static scheduling should win, got {speedup:.2f}x"
    write_series(
        os.path.join(results_dir, "ablation_static_schedule.txt"),
        format_series(
            f"Static vs dynamic scheduling (LCS 220x200, speedup {speedup:.2f}x)",
            "mode",
            ["dynamic", "static"],
            {"wall s": [data["dynamic"], data["static"]]},
            precision=3,
        ),
    )
