"""Per-kernel microbenchmark: interpreted vs generated vs hand, per tile.

Where ``bench_engines.py`` measures transports, this isolates the tile
*compute* itself: every vectorization class the analyzer emits (flat
sweep, elementwise, row scan, tensor hyperplane, tree level gather) is
driven through the same inline tiled data plane in three modes —

* ``interpreted`` — the per-vertex ``compute()`` cell loop (hand-written
  ``compute_tile`` methods are stripped so SW/LPS measure the true
  interpreted floor),
* ``generated``   — ``autokernel=True``: the analyzer's kernel,
* ``hand``        — the app's own ``compute_tile`` (SW and LPS only),

for each app x tile shape, on one thread so kernel arithmetic (not
scheduling) dominates the cell. The committed artifact
(``BENCH_kernels.json``) is the source for docs/TILING.md's tile-size
guidance: the ``speedup_gen_vs_interp`` column shows where each class
amortizes its per-tile plan/gather overhead, and ``gen_vs_hand`` tracks
how close the flat-sweep emission runs to hand-tuned code.

Entry points:

* ``python benchmarks/bench_kernels.py`` — full battery, refreshes
  ``BENCH_kernels.json`` at the repo root.
* ``python benchmarks/bench_kernels.py --quick`` — CI-sized instances,
  a single 64x64 tile shape.
"""

import argparse
import json
import os
import sys

import numpy as np

from repro.core.api import DPX10App
from repro.core.config import DPX10Config
from repro.core.runtime import DPX10Runtime
from repro.util.rng import seeded_rng
from repro.util.timer import Timer

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_kernels.json")

TILE_SHAPES = [(32, 32), (64, 64), (128, 128)]
QUICK_TILE_SHAPES = [(64, 64)]


def _dna(rng, n: int) -> str:
    return "".join(rng.choice(list("ACGT"), size=n))


def _battery(quick: bool):
    """App name -> zero-arg factory returning a fresh ``(app, dag)``.

    One representative per vectorization class (plus every app that
    ships a hand kernel), at sizes where the interpreted cell loop takes
    long enough to time but the full battery stays CI-friendly.
    """
    from repro.apps.edit_distance import EditDistanceApp
    from repro.apps.knapsack import KnapsackApp, KnapsackDag
    from repro.apps.lcs import LCSApp
    from repro.apps.lps import LPSApp
    from repro.apps.msa import MSA3App, make_msa3_instance
    from repro.apps.mtp import MTPApp, make_mtp_weights
    from repro.apps.smith_waterman import SWApp
    from repro.apps.tree_knapsack import make_tree_instance
    from repro.apps.tree_mis import TreeMISApp
    from repro.apps.unbounded_knapsack import (
        UnboundedKnapsackApp,
        UnboundedKnapsackDag,
    )
    from repro.core.domain import TreeDomain
    from repro.patterns.diagonal import DiagonalDag
    from repro.patterns.grid import GridDag
    from repro.patterns.interval import IntervalDag
    from repro.patterns.tensor import TensorWavefrontDag
    from repro.patterns.tree import TreeDag

    n = 192 if quick else 448
    rng = seeded_rng(3, "bench-kernels")
    s1, s2 = _dna(rng, n), _dna(rng, n)
    s = _dna(rng, n)
    items = n // 2
    cap = n
    kw = [int(w) for w in rng.integers(1, 12, size=items)]
    kv = [int(v) for v in rng.integers(1, 100, size=items)]
    w_down, w_right = make_mtp_weights(n, n, seed=3)
    q = 23 if quick else 39
    mx, my, mz = make_msa3_instance(q, seed=3)
    parents, weights, _values = make_tree_instance(
        2000 if quick else 8000, seed=3
    )
    dom = TreeDomain(parents)

    return {
        "sw": lambda: (SWApp(s1, s2), DiagonalDag(n + 1, n + 1)),
        "lcs": lambda: (LCSApp(s1, s2), DiagonalDag(n + 1, n + 1)),
        "edit_distance": lambda: (
            EditDistanceApp(s1, s2),
            DiagonalDag(n + 1, n + 1),
        ),
        "lps": lambda: (LPSApp(s), IntervalDag(len(s), len(s))),
        "knapsack": lambda: (
            KnapsackApp(kw, kv, cap),
            KnapsackDag(kw, cap),
        ),
        "unbounded_knapsack": lambda: (
            UnboundedKnapsackApp(kw, kv, cap),
            UnboundedKnapsackDag(kw, cap),
        ),
        "mtp": lambda: (
            MTPApp(w_down, w_right),
            GridDag(w_right.shape[0], w_down.shape[1]),
        ),
        "msa3": lambda: (
            (lambda app: (app, TensorWavefrontDag(app.domain.shape)))(
                MSA3App(mx, my, mz)
            )
        ),
        "tree_mis": lambda: (TreeMISApp(dom, weights), TreeDag(dom)),
    }


#: apps whose dag constrains tile geometry: the tree dag only coarsens
#: acyclically along whole level rows, so square shapes are mapped to
#: equal-area level strips
SHAPE_OVERRIDES = {
    "tree_mis": lambda s: (1, s[0] * s[1]),
}


def _strip_hand_kernel(app):
    """A twin of ``app`` whose class has no ``compute_tile`` override."""
    cls = type(app)
    if cls.compute_tile is DPX10App.compute_tile:
        return app
    shim = type(
        "Interpreted" + cls.__name__,
        (cls,),
        {"compute_tile": DPX10App.compute_tile},
    )
    twin = shim.__new__(shim)
    twin.__dict__.update(app.__dict__)
    return twin


def _checksum(app, dag):
    if app.value_dtype is not None:
        return int(dag.to_array(fill=-1, dtype=np.int64).sum())
    return None  # object store: equality is covered by the test suite


def run_mode(factory, shape, mode):
    """One (app, tile shape, mode) cell: wall seconds + value checksum."""
    app, dag = factory()
    autokernel = mode == "generated"
    if mode == "interpreted":
        app = _strip_hand_kernel(app)
    cfg = DPX10Config(
        engine="inline", tile_shape=shape, autokernel=autokernel
    )
    with Timer() as t:
        DPX10Runtime(app, dag, cfg).run()
    return round(t.elapsed, 4), _checksum(app, dag)


def run_battery(quick: bool) -> dict:
    shapes = QUICK_TILE_SHAPES if quick else TILE_SHAPES
    battery = _battery(quick)
    doc = {
        "quick": quick,
        "tile_shapes": [list(s) for s in shapes],
        "apps": {},
    }
    for name, factory in sorted(battery.items()):
        sample_app, _ = factory()
        has_hand = (
            type(sample_app).compute_tile is not DPX10App.compute_tile
        )
        modes = ["interpreted", "generated"] + (["hand"] if has_hand else [])
        per_app = {}
        for shape in shapes:
            shape = SHAPE_OVERRIDES.get(name, lambda s: s)(shape)
            cell = {}
            checks = {}
            for mode in modes:
                seconds, check = run_mode(factory, shape, mode)
                cell[mode] = seconds
                checks[mode] = check
            want = checks["interpreted"]
            assert all(c == want for c in checks.values()), (name, checks)
            cell["speedup_gen_vs_interp"] = (
                round(cell["interpreted"] / cell["generated"], 2)
                if cell["generated"]
                else None
            )
            if has_hand and cell["generated"]:
                cell["speedup_gen_vs_hand"] = round(
                    cell["hand"] / cell["generated"], 2
                )
            per_app[f"{shape[0]}x{shape[1]}"] = cell
            hand_txt = f"  hand {cell['hand']:7.3f}s" if has_hand else ""
            print(
                f"  {name:>18} {shape[0]:>3}x{shape[1]:<3} "
                f"interp {cell['interpreted']:7.3f}s  "
                f"gen {cell['generated']:7.3f}s"
                f"{hand_txt}  ({cell['speedup_gen_vs_interp']}x)",
                flush=True,
            )
        doc["apps"][name] = per_app
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized instances and a single 64x64 tile shape",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help="snapshot path (default: repo-root BENCH_kernels.json)",
    )
    args = parser.parse_args(argv)
    print("kernel microbench: interpreted vs generated vs hand (inline engine)")
    doc = run_battery(args.quick)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.relpath(args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
