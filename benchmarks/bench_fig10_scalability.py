"""Figure 10: execution time of SWLAG / MTP / LPS / 0-1KP vs node count.

Paper claim: "Figure 10 (a) to Figure 10 (c) reveal a speedup of about 4
for a 6 fold increase in nodes and Figure 10 (d) represents a speedup of
about 3."

Each test regenerates one sub-figure's series on the simulated Tianhe-1A
cluster and asserts the speedup window; the rendered table lands in
``results/fig10_scalability.txt``.
"""

import os

import pytest

from repro.bench import fig10_scalability, format_series, write_series
from repro.bench.figures import FIG10_NODES

# the paper's "about 4" / "about 3" with reproduction tolerance
SPEEDUP_WINDOWS = {
    "swlag": (3.4, 5.0),
    "mtp": (3.4, 5.0),
    "lps": (3.0, 4.6),
    "knapsack": (2.3, 3.5),
}


@pytest.mark.parametrize("app", ["swlag", "mtp", "lps", "knapsack"])
def test_fig10_speedup_window(benchmark, scale, results_dir, app):
    series = benchmark.pedantic(
        lambda: fig10_scalability(scale, apps=[app])[app],
        rounds=1,
        iterations=1,
    )
    times = [series[n] for n in FIG10_NODES]
    assert all(t > 0 for t in times)
    # time falls quickly at first, then plateaus
    assert series[4] < series[2]
    speedup = series[2] / series[12]
    lo, hi = SPEEDUP_WINDOWS[app]
    assert lo <= speedup <= hi, f"{app}: speedup {speedup:.2f} outside [{lo}, {hi}]"
    write_series(
        os.path.join(results_dir, f"fig10_{app}.txt"),
        format_series(
            f"Figure 10 ({app}): execution time, {scale} scale "
            f"(speedup 2->12 nodes = {speedup:.2f})",
            "nodes",
            FIG10_NODES,
            {app: times},
        ),
    )


def test_fig10_stencils_beat_knapsack(benchmark, scale):
    """The paper's headline contrast: (a)-(c) scale better than (d)."""
    data = benchmark.pedantic(
        lambda: fig10_scalability(scale), rounds=1, iterations=1
    )

    def speedup(app):
        return data[app][2] / data[app][12]

    assert speedup("swlag") > speedup("knapsack")
    assert speedup("mtp") > speedup("knapsack")
    assert speedup("lps") > speedup("knapsack")
