"""Shared fixtures for the figure-reproduction benchmarks.

Scale selection: ``REPRO_SCALE=small`` (default, seconds per figure) or
``REPRO_SCALE=paper`` (the paper's 10^8-10^9-vertex sweeps, minutes).
Rendered series tables are written to ``results/`` next to this file.

Every benchmark session additionally refreshes ``BENCH_obs.json`` at the
repo root: a quick instrumented SW + LPS tiled run with the metrics
snapshot attached, so perf drift *and* instrument drift show up in the
same diff. Set ``REPRO_SKIP_OBS_SNAPSHOT=1`` to skip it.
"""

import json
import os
import time

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
OBS_SNAPSHOT = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json")


@pytest.fixture(scope="session")
def scale() -> str:
    value = os.environ.get("REPRO_SCALE", "small")
    if value not in ("small", "paper"):
        raise ValueError(f"REPRO_SCALE must be small or paper, got {value!r}")
    return value


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_obs_snapshot(path: str = OBS_SNAPSHOT, size: int = 256) -> dict:
    """Run quick instrumented SW/LPS sweeps and write the perf snapshot.

    Each run is traced so the snapshot also carries the causal columns —
    critical-path fraction and per-category attribution — and diffs show
    *where* a perf regression landed, not just that one happened.
    """
    from repro.apps.lps import solve_lps
    from repro.apps.smith_waterman import solve_sw
    from repro.core.config import DPX10Config
    from repro.obs.causal import attribution, critical_path_fraction
    from repro.util.rng import seeded_rng
    from repro.util.timer import Timer

    rng = seeded_rng(0, "bench-obs")
    s1 = "".join(rng.choice(list("ACGT"), size=size))
    s2 = "".join(rng.choice(list("ACGT"), size=size))
    s = "".join(rng.choice(list("abcd"), size=size))

    def run(solver, *args, tile_shape):
        config = DPX10Config(
            nplaces=4, engine="threaded", tile_shape=tile_shape,
            metrics=True, trace=True,
        )
        with Timer() as t:
            _, report = solver(*args, config)
        out = {
            "seconds": t.elapsed,
            "completions": report.completions,
            "metrics": report.metrics,
        }
        if report.trace is not None and report.trace.events:
            out["critical_path_fraction"] = round(
                critical_path_fraction(report.trace), 4
            )
            out["attribution"] = {
                cat: round(frac, 4)
                for cat, frac in sorted(attribution(report.trace).items())
            }
        return out

    doc = {
        "size": size,
        "runs": {
            "sw_per_vertex": run(solve_sw, s1, s2, tile_shape=None),
            "sw_tiled_64": run(solve_sw, s1, s2, tile_shape=(64, 64)),
            "lps_per_vertex": run(solve_lps, s, tile_shape=None),
            "lps_tiled_64": run(solve_lps, s, tile_shape=(64, 64)),
        },
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc


ENGINES_SNAPSHOT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_engines.json"
)


def write_engines_snapshot(path: str = ENGINES_SNAPSHOT) -> dict:
    """Refresh the canonical engine-matrix snapshot (BENCH_engines.json)."""
    from bench_engines import run_matrix, write_snapshot

    doc = run_matrix((256, 512, 1024))
    write_snapshot(doc, path)
    return doc


def pytest_sessionfinish(session, exitstatus):
    if exitstatus != 0 or os.environ.get("REPRO_SKIP_OBS_SNAPSHOT"):
        return
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    start = time.perf_counter()
    write_obs_snapshot()
    reporter.write_line(
        f"wrote {os.path.relpath(OBS_SNAPSHOT)} "
        f"({time.perf_counter() - start:.1f}s)"
    )
    start = time.perf_counter()
    write_engines_snapshot()
    reporter.write_line(
        f"wrote {os.path.relpath(ENGINES_SNAPSHOT)} "
        f"({time.perf_counter() - start:.1f}s)"
    )
