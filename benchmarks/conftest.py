"""Shared fixtures for the figure-reproduction benchmarks.

Scale selection: ``REPRO_SCALE=small`` (default, seconds per figure) or
``REPRO_SCALE=paper`` (the paper's 10^8-10^9-vertex sweeps, minutes).
Rendered series tables are written to ``results/`` next to this file.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture(scope="session")
def scale() -> str:
    value = os.environ.get("REPRO_SCALE", "small")
    if value not in ("small", "paper"):
        raise ValueError(f"REPRO_SCALE must be small or paper, got {value!r}")
    return value


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
