"""Ablation: work stealing (extension; the paper's future work cites X10's
work-stealing schedulers [24, 25]).

On a skewed DAG (the LPS triangle under column splicing gives later places
several times the work of earlier ones), stealing should flatten the
per-place execution counts without changing the answer.
"""

import os

import pytest

from repro.apps.lps import solve_lps
from repro.apps.serial import lps_matrix
from repro.bench import format_series, write_series
from repro.core.config import DPX10Config
from repro.util.rng import seeded_rng


def test_stealing_balances_skewed_load(benchmark, results_dir):
    s = "".join(seeded_rng(3, "steal").choice(list("ABCD"), size=60))
    expect = int(lps_matrix(s)[0, -1])

    def sweep():
        out = {}
        for stealing in (False, True):
            cfg = DPX10Config(nplaces=4, work_stealing=stealing)
            app, rep = solve_lps(s, cfg)
            counts = [rep.per_place_executed.get(p, 0) for p in range(4)]
            out[stealing] = (app.length, counts, rep.wall_time)
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert data[False][0] == data[True][0] == expect

    def imbalance(counts):
        return max(counts) - min(counts)

    assert imbalance(data[True][1]) < imbalance(data[False][1])
    write_series(
        os.path.join(results_dir, "ablation_stealing.txt"),
        format_series(
            "Ablation: work stealing on a skewed DAG (LPS 60, 4 places)",
            "place",
            [0, 1, 2, 3],
            {
                "no stealing": data[False][1],
                "stealing": data[True][1],
            },
            unit="",
            precision=0,
        ),
    )


def test_stealing_threaded_correctness(benchmark):
    s = "".join(seeded_rng(4, "steal").choice(list("ABCD"), size=50))
    expect = int(lps_matrix(s)[0, -1])
    cfg = DPX10Config(nplaces=4, engine="threaded", work_stealing=True)

    def run():
        app, _ = solve_lps(s, cfg)
        return app.length

    assert benchmark.pedantic(run, rounds=2, iterations=1) == expect
