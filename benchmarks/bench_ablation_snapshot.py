"""Ablation: DPX10's recovery vs X10's periodic-snapshot baseline.

Paper section VI-D rejects ``ResilientDistArray``'s snapshots: "the
periodic snapshot mechanism is infeasible because a large volume of
intermediate results may be produced in the progress of computing." This
benchmark quantifies that: cells copied to stable storage by periodic
snapshots vs cells the new recovery protocol moves (zero under the default
discard manner — surviving results stay in place).
"""

import os

import pytest

from repro.apgas.failure import FaultPlan
from repro.apgas.place import PlaceGroup
from repro.apps.lcs import solve_lcs
from repro.bench import format_series, write_series
from repro.core.config import DPX10Config
from repro.dist.dist import Dist
from repro.dist.region import Region2D
from repro.dist.resilient import ResilientDistArray
from repro.util.rng import seeded_rng


def _text(n, seed):
    return "".join(seeded_rng(seed, "snap").choice(list("ABCD"), size=n))


def test_snapshot_volume_vs_recovery_transfer(benchmark, results_dir):
    n = 60
    x, y = _text(n, 5), _text(n, 6)

    def run():
        # snapshot baseline: checkpoint every 25% of progress
        group = PlaceGroup(4)
        region = Region2D.of_shape(n + 1, n + 1)
        arr = ResilientDistArray(Dist.block_cols(region, [0, 1, 2, 3]), group)
        total = region.size
        for k, (i, j) in enumerate(region):
            arr.set(i, j, k)
            if (k + 1) % (total // 4) == 0:
                arr.snapshot()
        snapshot_cells = arr.cells_copied_total

        # DPX10 recovery: run with a real fault, count copied cells
        cfg = DPX10Config(nplaces=4, restore_manner="discard")
        _, report = solve_lcs(x, y, cfg, fault_plans=[FaultPlan(2, at_fraction=0.5)])
        recovery_copied = sum(s.copied for s in report.recovery_stats)
        recovery_preserved = sum(s.preserved_in_place for s in report.recovery_stats)
        return snapshot_cells, recovery_copied, recovery_preserved

    snapshot_cells, recovery_copied, recovery_preserved = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # periodic snapshots copy a multiple of the array; recovery copies none
    # (discard) while still preserving surviving results in place
    assert snapshot_cells > (n + 1) * (n + 1)
    assert recovery_copied == 0
    assert recovery_preserved > 0
    write_series(
        os.path.join(results_dir, "ablation_snapshot.txt"),
        format_series(
            "Ablation: cells moved to stable storage / across the network",
            "mechanism",
            ["periodic snapshot", "DPX10 recovery (copied)", "DPX10 (in place)"],
            {"cells": [snapshot_cells, recovery_copied, recovery_preserved]},
            unit="",
            precision=0,
        ),
    )


def test_ft_modes_at_cluster_scale(benchmark, results_dir):
    """Section VI-D's argument, quantified on the simulated cluster.

    Two ledgers: (a) the *fault-free* run, where periodic snapshots tax
    every execution while the paper's recovery costs nothing; (b) the
    *one-fault* run, where dense snapshots can win back recompute time
    (stable storage even preserves the dead node's results) — but only by
    paying the per-run checkpoint tax that grows with checkpoint density
    and intermediate-state volume, which is the in-feasibility the paper
    calls out.
    """
    from repro.bench.figures import sim_dag_for
    from repro.sim import ClusterSpec, CostModel
    from repro.sim.engine import simulate, simulate_with_fault, simulate_with_fault_snapshot

    dag = sim_dag_for("swlag", 4_000_000)
    cluster = ClusterSpec.tianhe1a(4)
    cost = CostModel.for_app("swlag")

    def run():
        base = simulate(dag, cluster, cost, tile_size=24).makespan
        rec = simulate_with_fault(dag, cluster, cost, fail_node=3, tile_size=24)
        snaps = {
            every: simulate_with_fault_snapshot(
                dag, cluster, cost, fail_node=3, checkpoint_every=every, tile_size=24
            )
            for every in (0.05, 0.25)
        }
        return base, rec, snaps

    base, rec, snaps = benchmark.pedantic(run, rounds=1, iterations=1)
    # (a) fault-free: recovery mode adds nothing; snapshots tax every run
    dense = snaps[0.05]
    assert dense.checkpoint_seconds > 0.1 * base
    # (b) denser checkpoints -> more tax, less rollback
    assert snaps[0.05].checkpoint_seconds > snaps[0.25].checkpoint_seconds
    assert snaps[0.05].snapshots_taken > snaps[0.25].snapshots_taken
    write_series(
        os.path.join(results_dir, "ablation_ft_cluster_scale.txt"),
        format_series(
            "FT at cluster scale (SWLAG 4M, 4 nodes, fault at 50%)",
            "mode",
            ["no fault", "recovery", "snap 5%", "snap 25%"],
            {
                "total s": [base, rec.total, snaps[0.05].total, snaps[0.25].total],
                "always-paid s": [0.0, 0.0, snaps[0.05].checkpoint_seconds, snaps[0.25].checkpoint_seconds],
            },
        ),
    )


def test_ft_modes_head_to_head(benchmark, results_dir):
    """Run both FT mechanisms end to end on the same faulting workload."""
    x, y = _text(70, 8), _text(70, 9)
    plans = [FaultPlan(2, at_fraction=0.6)]

    def run():
        out = {}
        for mode, extra in (
            ("recovery", {}),
            ("snapshot", {"snapshot_interval": 300}),
        ):
            cfg = DPX10Config(nplaces=4, ft_mode=mode, **extra)
            app, rep = solve_lcs(x, y, cfg, fault_plans=plans)
            out[mode] = (app.length, rep.recomputed, rep.snapshot_cells_copied)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    assert data["recovery"][0] == data["snapshot"][0]  # same answer
    # the trade section VI-D describes: snapshots can roll back less work
    # (stable storage even saves the dead place's results) but only by
    # continuously copying the whole intermediate state — here orders of
    # magnitude more cells than the DAG itself — which is why the paper
    # deems them "infeasible" for DP volumes
    assert data["recovery"][2] == 0
    assert data["snapshot"][2] > 71 * 71  # more checkpoint traffic than cells
    write_series(
        os.path.join(results_dir, "ablation_ft_modes.txt"),
        format_series(
            "Ablation: FT mechanism head-to-head (LCS 70x70, fault at 60%)",
            "mode",
            ["recovery", "snapshot"],
            {
                "recomputed": [data["recovery"][1], data["snapshot"][1]],
                "ckpt cells": [data["recovery"][2], data["snapshot"][2]],
            },
            unit="",
            precision=0,
        ),
    )
