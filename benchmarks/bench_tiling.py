"""Tiled wavefront execution: tile-shape sweep and per-vertex baseline.

The tile engine (``repro.core.tiling``, ``docs/TILING.md``) replaces the
per-vertex scheduler hot path with one scheduling decision per *tile* and
lets apps that define :meth:`~repro.core.api.DPX10App.compute_tile` run
NumPy kernels over whole tiles. This benchmark measures what that buys on
the two kernel-enabled built-in apps:

* Smith-Waterman (diagonal pattern, antidiagonal kernel sweeps)
* Longest Palindromic Subsequence (interval pattern, k-ascending sweeps)

Two entry points:

* ``pytest benchmarks/bench_tiling.py --benchmark-only`` — the tier-2
  regression form: small matrices, asserts tiling actually wins.
* ``python benchmarks/bench_tiling.py [--quick] [--size N]`` — the CLI
  sweep behind the README's measured-speedup table. ``--quick`` runs a
  CI-sized sweep in a few seconds and is uploaded as a CI artifact.
"""

import argparse
import json
import os
import sys

from repro.apps.lps import solve_lps
from repro.apps.serial import lps_matrix, sw_matrix
from repro.apps.smith_waterman import solve_sw
from repro.bench import format_series, write_series
from repro.core.config import DPX10Config
from repro.util.rng import seeded_rng
from repro.util.timer import Timer

#: tile shapes swept by the CLI; ``None`` is the per-vertex baseline
SWEEP_SHAPES = (None, (32, 32), (64, 64), (128, 128), (256, 256))


def _random_dna(rng, n: int) -> str:
    return "".join(rng.choice(list("ACGT"), size=n))


def _config(tile_shape, nplaces: int = 4) -> DPX10Config:
    return DPX10Config(nplaces=nplaces, engine="threaded", tile_shape=tile_shape)


def time_sw(s1: str, s2: str, tile_shape) -> tuple[float, int]:
    """Wall seconds + best score for one SW run."""
    with Timer() as t:
        app, _ = solve_sw(s1, s2, _config(tile_shape))
    return t.elapsed, int(app.best_score)


def time_lps(s: str, tile_shape) -> tuple[float, int]:
    """Wall seconds + LPS length for one run."""
    with Timer() as t:
        app, _ = solve_lps(s, _config(tile_shape))
    return t.elapsed, int(app.length)


def test_tiling_speedup(benchmark, results_dir):
    """Tiled SW must beat the per-vertex path even at small scale."""
    rng = seeded_rng(7, "tiling-bench")
    s1, s2 = _random_dna(rng, 512), _random_dna(rng, 512)
    expect = int(sw_matrix(s1, s2).max())

    def sweep():
        base_t, base_score = time_sw(s1, s2, None)
        tile_t, tile_score = time_sw(s1, s2, (64, 64))
        assert base_score == expect and tile_score == expect
        return {"per-vertex": base_t, "tiled(64,64)": tile_t}

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    speedup = data["per-vertex"] / data["tiled(64,64)"]
    assert speedup > 1.5, f"tiling should win, got {speedup:.2f}x"
    write_series(
        os.path.join(results_dir, "tiling_speedup.txt"),
        format_series(
            f"Tiled vs per-vertex execution (SW 512x512, speedup {speedup:.2f}x)",
            "mode",
            list(data),
            {"wall s": list(data.values())},
            precision=3,
        ),
    )


def run_sweep(size: int, shapes, out_dir: str, verify: bool) -> dict:
    """Time SW and LPS at ``size`` for each tile shape; write table + JSON."""
    rng = seeded_rng(7, "tiling-bench")
    s1, s2 = _random_dna(rng, size), _random_dna(rng, size)
    expect_sw = int(sw_matrix(s1, s2).max()) if verify else None
    expect_lps = int(lps_matrix(s1)[0, -1]) if verify else None

    results = {"size": size, "sw": {}, "lps": {}}
    for shape in shapes:
        label = "per-vertex" if shape is None else f"{shape[0]}x{shape[1]}"
        sw_t, sw_score = time_sw(s1, s2, shape)
        lps_t, lps_len = time_lps(s1, shape)
        if verify:
            assert sw_score == expect_sw, (label, sw_score, expect_sw)
            assert lps_len == expect_lps, (label, lps_len, expect_lps)
        results["sw"][label] = sw_t
        results["lps"][label] = lps_t
        print(f"  {label:>12}  sw {sw_t:8.3f}s   lps {lps_t:8.3f}s", flush=True)

    labels = list(results["sw"])
    table = format_series(
        f"Tile-shape sweep, SW + LPS {size}x{size}, threaded engine",
        "tile shape",
        labels,
        {
            "SW wall s": [results["sw"][k] for k in labels],
            "LPS wall s": [results["lps"][k] for k in labels],
        },
        precision=3,
    )
    print(table)
    write_series(os.path.join(out_dir, "tiling_sweep.txt"), table)
    with open(os.path.join(out_dir, "tiling_sweep.json"), "w") as fh:
        json.dump(results, fh, indent=2)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized sweep (256^2, two shapes) that finishes in seconds",
    )
    parser.add_argument(
        "--size", type=int, default=1024, help="matrix side length (default 1024)"
    )
    parser.add_argument(
        "--out", default="results", help="output directory (default results/)"
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the serial-reference check (large sizes)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        size, shapes = 256, (None, (64, 64))
    else:
        size, shapes = args.size, SWEEP_SHAPES
    print(f"tile sweep: {size}x{size}, shapes={[s or 'per-vertex' for s in shapes]}")
    results = run_sweep(size, shapes, args.out, verify=not args.no_verify)

    base = results["sw"]["per-vertex"]
    best_label = min(results["sw"], key=results["sw"].get)
    print(f"best SW: {best_label} ({base / results['sw'][best_label]:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
