"""Micro-benchmarks of the runtime's hot paths (pytest-benchmark timed).

These are the components section VI identifies as the framework's
overhead sources: DAG operations (pattern dispatch), worker management
(ready list, indegree bookkeeping), the remote-vertex cache, and the
distribution lookup. Plus end-to-end application throughput.
"""

import numpy as np
import pytest

from repro.apps.lcs import solve_lcs
from repro.apps.knapsack import make_knapsack_instance, solve_knapsack
from repro.core.cache import RemoteCache
from repro.core.config import DPX10Config
from repro.dist.dist import Dist
from repro.dist.region import Region2D
from repro.patterns import DiagonalDag
from repro.util.rng import seeded_rng


class TestComponentMicro:
    def test_pattern_dependency_dispatch(self, benchmark):
        dag = DiagonalDag(1000, 1000)

        def probe():
            s = 0
            for k in range(500):
                s += len(dag.get_dependency(k + 1, 500))
            return s

        assert benchmark(probe) == 1500

    def test_cache_put_get(self, benchmark):
        cache = RemoteCache(256)

        def churn():
            for k in range(1000):
                cache.put((k % 400, k), k)
                cache.get((k % 400, k))
            return cache.hits

        assert benchmark(churn) > 0

    def test_dist_place_of(self, benchmark):
        dist = Dist.block_cols(Region2D.of_shape(2000, 2000), list(range(8)))

        def probe():
            return sum(dist.place_of(i, i) for i in range(0, 2000, 7))

        benchmark(probe)

    def test_cyclic_dist_place_of(self, benchmark):
        dist = Dist.cyclic_rows(Region2D.of_shape(2000, 2000), list(range(8)))
        benchmark(lambda: sum(dist.place_of(i, 3) for i in range(0, 2000, 7)))


class TestInitialization:
    def test_vectorized_store_build(self, benchmark):
        """Store construction uses the stencil fast path: closed-form
        indegrees instead of per-cell dependency enumeration."""
        from repro.apgas.place import PlaceGroup
        from repro.core.vertex_store import build_stores
        from repro.dist.dist import Dist

        dag = DiagonalDag(400, 400)

        def build():
            group = PlaceGroup(2)
            dist = Dist.block_cols(dag.region, [0, 1])
            stores = build_stores(group, dag, dist, np.int64, lambda i, j: None)
            return sum(s.active_count for s in stores.values())

        assert benchmark(build) == 160_000


class TestEndToEndThroughput:
    def _dna(self, n, seed):
        return "".join(seeded_rng(seed, "micro").choice(list("ACGT"), size=n))

    def test_lcs_inline_throughput(self, benchmark):
        x, y = self._dna(60, 1), self._dna(60, 2)

        def run():
            app, report = solve_lcs(x, y, DPX10Config(nplaces=2))
            return report.completions

        assert benchmark(run) == 61 * 61

    def test_lcs_threaded_throughput(self, benchmark):
        x, y = self._dna(60, 1), self._dna(60, 2)
        cfg = DPX10Config(nplaces=2, engine="threaded")

        def run():
            _, report = solve_lcs(x, y, cfg)
            return report.completions

        assert benchmark.pedantic(run, rounds=3, iterations=1) == 61 * 61

    def test_knapsack_custom_pattern_throughput(self, benchmark):
        w, v = make_knapsack_instance(30, 80, seed=2)

        def run():
            app, _ = solve_knapsack(w, v, 80, DPX10Config(nplaces=3))
            return app.best_value

        assert benchmark.pedantic(run, rounds=3, iterations=1) > 0
