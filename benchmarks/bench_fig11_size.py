"""Figure 11: execution time on 10 nodes (120 cores) vs vertex count.

Paper claims: "DPX10 provides linear scalability with the graph size" and
"0/1KP takes a little longer since it needs more time to resolve the
dependencies".
"""

import os

import pytest

from repro.bench import fig11_size_scaling, format_series, write_series


def test_fig11_linear_in_size(benchmark, scale, results_dir):
    data = benchmark.pedantic(
        lambda: fig11_size_scaling(scale), rounds=1, iterations=1
    )
    sizes = sorted(next(iter(data.values())).keys())
    for app, series in data.items():
        times = [series[v] for v in sizes]
        # strictly growing
        assert all(b > a for a, b in zip(times, times[1:]))
        # linear shape: time per vertex varies by < 2.5x across the sweep
        per_vertex = [series[v] / v for v in sizes]
        assert max(per_vertex) / min(per_vertex) < 2.5, (
            f"{app}: nonlinear scaling {per_vertex}"
        )
    write_series(
        os.path.join(results_dir, "fig11_size_scaling.txt"),
        format_series(
            f"Figure 11: execution time on 10 nodes, {scale} scale",
            "V",
            sizes,
            {app: [series[v] for v in sizes] for app, series in data.items()},
        ),
    )


def test_fig11_knapsack_slowest_per_vertex(benchmark, scale):
    data = benchmark.pedantic(
        lambda: fig11_size_scaling(scale), rounds=1, iterations=1
    )
    sizes = sorted(data["knapsack"].keys())
    largest = sizes[-1]
    kp = data["knapsack"][largest] / largest
    mtp = data["mtp"][largest] / largest
    assert kp > mtp, "0/1KP should pay extra dependency-resolution time"
