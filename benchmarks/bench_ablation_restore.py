"""Ablation: restore manner — discard vs copy (Refinements: "by default
the result of the finished vertices on the remote places will be abandoned
during recovery. But the user can tell DPX10 to restore them if the
computation is more time consuming than data transfer").

Real runtime: recomputation volume under each manner; simulated: total
one-fault time under each manner at cluster scale.
"""

import os

import pytest

from repro.apgas.failure import FaultPlan
from repro.apps.lcs import solve_lcs
from repro.bench import format_series, write_series
from repro.bench.figures import sim_dag_for
from repro.core.config import DPX10Config
from repro.sim import ClusterSpec, CostModel, simulate_with_fault
from repro.util.rng import seeded_rng


def _text(n, seed):
    return "".join(seeded_rng(seed, "restore").choice(list("ABCD"), size=n))


def test_restore_manner_recompute_volume(benchmark, results_dir):
    x, y = _text(80, 3), _text(80, 4)
    plans = [FaultPlan(2, at_fraction=0.6)]

    def sweep():
        out = {}
        for manner in ("discard", "copy"):
            cfg = DPX10Config(nplaces=4, restore_manner=manner)
            app, report = solve_lcs(x, y, cfg, fault_plans=plans)
            out[manner] = (report.recomputed, report.network_bytes, app.length)
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert data["discard"][2] == data["copy"][2]  # same answer
    # copying preserved results means strictly less recomputation...
    assert data["copy"][0] <= data["discard"][0]
    # ...bought with extra network transfer
    assert data["copy"][1] >= data["discard"][1]
    write_series(
        os.path.join(results_dir, "ablation_restore.txt"),
        format_series(
            "Ablation: restore manner (LCS 80x80, fault at 60%)",
            "manner",
            ["discard", "copy"],
            {
                "recomputed": [data["discard"][0], data["copy"][0]],
                "net bytes": [data["discard"][1], data["copy"][1]],
            },
            unit="",
            precision=0,
        ),
    )


def test_restore_manner_simulated_crossover(benchmark, scale):
    """At cluster scale, copy wins when compute dominates transfer."""
    dag = sim_dag_for("swlag", 4_000_000)
    cluster = ClusterSpec.tianhe1a(4)
    cost = CostModel.for_app("swlag")

    def run():
        rd = simulate_with_fault(
            dag, cluster, cost, fail_node=3, restore_manner="discard", tile_size=16
        )
        rc = simulate_with_fault(
            dag, cluster, cost, fail_node=3, restore_manner="copy", tile_size=16
        )
        return rd, rc

    rd, rc = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rc.tiles_preserved >= rd.tiles_preserved
    assert rc.total <= rd.total
