"""Figure 12: DPX10 vs hand-written ("native X10") SWLAG.

Paper claim: "the X10 version slightly out performs DPX10's implementation
... the DPX10/X10 rate is about 1.02 to 1.12, which indicates that the
overhead of DPX10 is negligible." Configuration: 4 and 8 nodes, cache
disabled.

Two reproductions:

* **simulated** — the paper-scale ratio from the cost model (the framework
  pays its bookkeeping overhead, both pay communication);
* **measured** — real wall-clock of the framework (1 place, inline engine)
  against the hand-written Python loop on the same SWLAG instance. This
  measures the *Python* framework's overhead, reported for honesty; the
  paper-comparable number is the simulated one.
"""

import os

import pytest

from repro.apps.smith_waterman import solve_swlag
from repro.bench import fig12_overhead, format_series, write_series
from repro.core.config import DPX10Config
from repro.native.swlag_native import swlag_native
from repro.util.rng import seeded_rng
from repro.util.timer import Timer


def test_fig12_simulated_ratio(benchmark, scale, results_dir):
    data = benchmark.pedantic(lambda: fig12_overhead(scale), rounds=1, iterations=1)
    rows = {}
    sizes = None
    for nodes, series in data.items():
        sizes = sorted(series.keys())
        ratios = [series[v][2] for v in sizes]
        rows[f"{nodes} nodes"] = ratios
        for r in ratios:
            assert 1.0 < r <= 1.15, f"ratio {r:.3f} outside the paper's band"
    write_series(
        os.path.join(results_dir, "fig12_overhead.txt"),
        format_series(
            f"Figure 12(b): DPX10/X10 ratio, cache off, {scale} scale",
            "V",
            sizes,
            rows,
            unit="x",
            precision=3,
        ),
    )


def test_fig12_native_never_slower_simulated(benchmark, scale):
    data = benchmark.pedantic(lambda: fig12_overhead(scale), rounds=1, iterations=1)
    for series in data.values():
        for dpx10_s, native_s, _ in series.values():
            assert native_s <= dpx10_s


def _random_dna(n, seed):
    rng = seeded_rng(seed, "fig12-dna")
    return "".join(rng.choice(list("ACGT"), size=n))


def test_fig12_measured_python_overhead(benchmark, results_dir):
    """Real wall-clock: framework vs hand-written loop (cache off)."""
    x, y = _random_dna(150, 1), _random_dna(150, 2)

    def run_framework():
        cfg = DPX10Config(nplaces=1, cache_size=0)
        app, _ = solve_swlag(x, y, cfg)
        return app.best_score

    framework_score = benchmark.pedantic(run_framework, rounds=1, iterations=1)
    with Timer() as t_frame:
        run_framework()
    with Timer() as t_native:
        h, _, _ = swlag_native(x, y)
    assert framework_score == int(h.max())
    ratio = t_frame.elapsed / t_native.elapsed
    # the Python framework pays real per-vertex machinery; it must stay
    # within an order of magnitude of the hand-written loop
    assert ratio < 30.0
    write_series(
        os.path.join(results_dir, "fig12_measured_python.txt"),
        format_series(
            "Figure 12 (measured, Python substrate): framework vs native loop, "
            "150x150 SWLAG",
            "impl",
            ["dpx10", "native", "ratio"],
            {"seconds": [t_frame.elapsed, t_native.elapsed, ratio]},
            unit="",
            precision=4,
        ),
    )
