"""Ablation: 2D/0D vs 2D/1D patterns.

Paper section III: "DPX10 can also express the type of 2D/iD (i >= 1),
nonetheless, the performance is less than satisfactory. We will address
that in the future work." This benchmark quantifies the gap: per-vertex
cost and communication of the ``full_row`` and ``triangular`` (2D/1D)
patterns against the ``diagonal`` stencil (2D/0D), real runtime and
simulated.
"""

import os

import numpy as np
import pytest

from repro.bench import format_series, write_series
from repro.core.api import DPX10App, dependency_map
from repro.core.config import DPX10Config
from repro.core.runtime import DPX10Runtime
from repro.patterns import DiagonalDag, FullRowDag, TriangularDag
from repro.sim import ClusterSpec, CostModel, simulate
from repro.util.timer import Timer


class MaxPlusOne(DPX10App[int]):
    """Works on any pattern: one more than the max of the dependencies."""

    value_dtype = np.int64

    def compute(self, i, j, vertices):
        if not vertices:
            return 0
        return max(v.get_result() for v in vertices) + 1


def test_2d1d_per_vertex_cost_real(benchmark, results_dir):
    n = 20  # triangular is O(n^3) edges; keep the exact run small

    def sweep():
        out = {}
        for name, dag in (
            ("diagonal", DiagonalDag(n, n)),
            ("full_row", FullRowDag(n, n)),
            ("triangular", TriangularDag(n, n)),
        ):
            cfg = DPX10Config(nplaces=3)
            with Timer() as t:
                report = DPX10Runtime(MaxPlusOne(), dag, cfg).run()
            out[name] = (
                t.elapsed / report.active_vertices,
                report.network_bytes,
            )
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # the 2D/1D patterns pay strictly more per vertex than the stencil
    assert data["full_row"][0] > data["diagonal"][0]
    assert data["triangular"][0] > data["diagonal"][0]
    write_series(
        os.path.join(results_dir, "ablation_2d1d_real.txt"),
        format_series(
            "Ablation (real runtime): per-vertex seconds by pattern class",
            "pattern",
            ["diagonal", "full_row", "triangular"],
            {
                "s/vertex": [data[p][0] for p in ("diagonal", "full_row", "triangular")],
            },
            unit="",
            precision=6,
        ),
    )


def test_2d1d_simulated_communication_blowup(benchmark):
    cost = CostModel.for_app("sw")
    cluster = ClusterSpec.tianhe1a(4)

    def run():
        d0 = simulate(DiagonalDag(2000, 2000), cluster, cost, tile_size=100)
        d1 = simulate(FullRowDag(2000, 2000), cluster, cost, tile_size=100)
        return d0, d1

    d0, d1 = benchmark.pedantic(run, rounds=1, iterations=1)
    # same cell count, but the 2D/1D pattern moves vastly more data and
    # runs longer — the "less than satisfactory" regime
    assert d1.comm_seconds > 10 * max(d0.comm_seconds, 1e-9)
    assert d1.makespan > d0.makespan
