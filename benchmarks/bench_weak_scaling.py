"""Extension benchmark: weak scaling and multi-fault behaviour.

The paper reports strong scaling (fixed problem, more nodes) only; a
downstream user's first follow-up questions are "what if I grow the
problem with the cluster?" and "what does a second failure cost?". Both
run on the simulated cluster.
"""

import math
import os

import pytest

from repro.bench import format_series, write_series
from repro.bench.figures import sim_dag_for
from repro.sim import ClusterSpec, CostModel, simulate
from repro.sim.engine import simulate_with_faults

NODES = [2, 4, 8]
CELLS_PER_NODE = 2_000_000


def test_weak_scaling_swlag(benchmark, results_dir):
    """Problem grows with the cluster: time should stay roughly flat
    until wavefront and boundary costs bite."""
    cost = CostModel.for_app("swlag")

    def sweep():
        out = {}
        for nodes in NODES:
            dag = sim_dag_for("swlag", CELLS_PER_NODE * nodes)
            out[nodes] = simulate(
                dag, ClusterSpec.tianhe1a(nodes), cost, tile_size=24
            ).makespan
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    times = [data[n] for n in NODES]
    # weak-scaling efficiency: time at 8 nodes within 2.5x of 2 nodes
    # (perfect would be 1.0x; the wavefront makes that unreachable)
    assert times[-1] / times[0] < 2.5
    write_series(
        os.path.join(results_dir, "weak_scaling.txt"),
        format_series(
            f"Weak scaling: {CELLS_PER_NODE:,} vertices per node (SWLAG)",
            "nodes",
            NODES,
            {"time": times},
        ),
    )


def test_second_fault_costs_less_than_double(benchmark, results_dir):
    cost = CostModel.for_app("swlag")
    dag = sim_dag_for("swlag", 4_000_000)
    cluster = ClusterSpec.tianhe1a(6)

    def sweep():
        one = simulate_with_faults(dag, cluster, cost, [(5, 0.4)], tile_size=24)
        two = simulate_with_faults(
            dag, cluster, cost, [(5, 0.4), (4, 0.7)], tile_size=24
        )
        return one, two

    one, two = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert two.total > one.total
    # losing a second node is incremental, not catastrophic
    overhead_one = one.total - one.no_fault_makespan
    overhead_two = two.total - two.no_fault_makespan
    assert overhead_two < 3 * overhead_one
    write_series(
        os.path.join(results_dir, "multi_fault.txt"),
        format_series(
            "Multi-fault: total time vs fault count (SWLAG, 6 nodes)",
            "faults",
            [0, 1, 2],
            {"time": [one.no_fault_makespan, one.total, two.total]},
        ),
    )


def test_tile_size_sensitivity(benchmark, results_dir):
    """The simulator's one free parameter, characterized: the tile size is
    the effective scheduling granularity, and in the wavefront-bound
    regime a coarser granularity strictly lengthens the pipeline. The
    paper-scale calibration (tile 96 at 10^8-10^9 vertices) sits where
    this term reproduces Figure 10's saturation."""
    cost = CostModel.for_app("swlag")
    dag = sim_dag_for("swlag", 4_000_000)
    cluster = ClusterSpec.tianhe1a(8)
    sizes = [8, 16, 24, 48]

    def sweep():
        return {b: simulate(dag, cluster, cost, tile_size=b).makespan for b in sizes}

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    times = [data[b] for b in sizes]
    assert times == sorted(times), "coarser tiles must lengthen the wavefront"
    write_series(
        os.path.join(results_dir, "tile_sensitivity.txt"),
        format_series(
            "Tile-size sensitivity (SWLAG, 4M vertices, 8 nodes)",
            "tile",
            sizes,
            {"time": times},
        ),
    )
