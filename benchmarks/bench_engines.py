"""Engine matrix benchmark: wall time and bytes moved, per engine per size.

The canonical output is ``BENCH_engines.json`` at the repo root — the
engine-level analogue of ``BENCH_obs.json``: one committed snapshot that
makes transport-level perf drift show up in review diffs. Each cell of
the matrix is a tiled Smith-Waterman run (the kernel-enabled app every
transport exercises hardest) recording wall seconds, cross-place bytes
moved, and completions for:

* ``inline``      — the deterministic single-thread scheduler
* ``threaded``    — one worker activity per place
* ``mp_pipe``     — process-per-place, pickled pipe data plane (``shm=False``)
* ``mp_shm``      — process-per-place, shared-memory vertex planes
* ``mp_shm_auto`` — mp_shm plus ``autokernel=True``: tiles run the
  *generated* vectorized kernel instead of SW's hand-written
  ``compute_tile`` (see docs/ANALYSIS.md). The flat-sweep emission
  (one gather into skewed lane buffers, contiguous-slice sweeps per
  antidiagonal, cached index plans shipped to the workers pre-fork)
  holds ``speedup_auto_vs_hand`` at ~0.7-0.8x of the hand-tuned kernel
  even at the 64x64 bench tile; ``--check-against`` enforces an
  absolute 0.5x floor at the gate size on top of the drift check.
* ``served_warm`` — the same SW job submitted through a live
  :class:`repro.serve.server.JobServer` with its prewarmed place pool
  and the result cache disabled. The recorded ``seconds`` is the median
  latency of the second and subsequent requests; ``seconds_first`` keeps
  the priming request. ``speedup_warm_vs_cold`` is the headline:
  ``mp_shm`` cold one-shot seconds over warm served seconds (the PR 7
  acceptance bar is >= 2x, i.e. warm <= 0.5x cold at 512^2).

Entry points:

* ``python benchmarks/bench_engines.py`` — full matrix (256/512/1024),
  refreshes ``BENCH_engines.json`` including the headline
  ``speedup_shm_vs_pipe`` / ``speedup_auto_vs_hand`` numbers.
* ``python benchmarks/bench_engines.py --quick`` — CI-sized (256/512).
* ``--check-against BENCH_engines.json`` — regression gate: fails (exit
  1) if the mp shm SW 512x512 wall time (interpreted or autokernel
  cell) regressed more than ``--threshold`` (default 25%) against the
  committed baseline.
* ``--native-check`` — acceptance gate for the autokernel path, run at
  2048^2 for SW, LCS and edit distance against the hand-vectorized
  :mod:`repro.native.dp_native` sweeps. Two timed ratios per app:

  - *kernel*: the generated ``compute_tile`` driven over the whole
    matrix as one window, same process as native. This is the codegen
    promise — the emitted arithmetic must stay within
    ``--native-threshold`` (default 2x) of the hand-written sweep.
  - *end to end*: the full ``mp_shm_auto`` run (tile scheduling, halo
    assembly, shm planes, process orchestration). Its matrix must
    equal native bit-for-bit, and its wall time must stay within
    ``--native-e2e-threshold`` (default 10x). The looser bound is
    structural, not slack in the kernels: tiling a wavefront multiplies
    the number of per-antidiagonal NumPy dispatch rounds by about the
    tile-grid width, master-side completion bookkeeping is Theta(cells)
    of Python-level work (~0.7s at 2048^2), and the tile-grid wavefront
    caps parallel efficiency at p^2/(2p-1) — while per-cell int64
    max/add arithmetic is too cheap for 4 places to win it back.
    Measured 2026-08 with the flat-sweep emission (cached index plans,
    skewed lane buffers, boundary-profile specialization): kernel
    ratios 0.5-1.5x — LCS *beats* the hand sweep, which re-derives
    index vectors per antidiagonal — and ~1.6-2.1x end to end (vs ~6x
    for per-level emission, and ~25-44x before the dense-stencil
    ``_act`` elision, bounds-check folding and subexpression hoisting).

The benchmark session also refreshes the snapshot via
``conftest.pytest_sessionfinish`` (set ``REPRO_SKIP_OBS_SNAPSHOT=1`` to
skip), mirroring how ``BENCH_obs.json`` stays current.
"""

import argparse
import json
import os
import sys

from repro.apps.smith_waterman import solve_sw
from repro.core.config import DPX10Config
from repro.util.rng import seeded_rng
from repro.util.timer import Timer

#: repo-root canonical snapshot (next to BENCH_obs.json)
DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_engines.json")

#: the regression gate pins this cell of the matrix
GATE_ENGINE = "mp_shm"
GATE_SIZE = 512

#: absolute floor for the generated-vs-hand kernel ratio at the gate
#: size — the flat-sweep codegen promise (PR 10), not a drift check
AUTO_VS_HAND_FLOOR = 0.5

TILE = (64, 64)
NPLACES = 4

#: engine label -> DPX10Config kwargs
ENGINE_CONFIGS = {
    "inline": {"engine": "inline"},
    "threaded": {"engine": "threaded"},
    "mp_pipe": {"engine": "mp", "shm": False},
    "mp_shm": {"engine": "mp", "shm": True},
    "mp_shm_auto": {"engine": "mp", "shm": True, "autokernel": True},
}

#: the --native-check battery runs at this size with this tile shape
#: (512^2 tiles: big enough that per-tile dispatch rounds stop
#: dominating, small enough that all four places see work)
NATIVE_SIZE = 2048
NATIVE_TILE = (512, 512)


def _random_dna(rng, n: int) -> str:
    return "".join(rng.choice(list("ACGT"), size=n))


def run_cell(label: str, s1: str, s2: str) -> dict:
    """One (engine, size) cell: wall seconds, bytes moved, completions."""
    cfg = DPX10Config(nplaces=NPLACES, tile_shape=TILE, **ENGINE_CONFIGS[label])
    with Timer() as t:
        app, report = solve_sw(s1, s2, cfg)
    return {
        "seconds": round(t.elapsed, 4),
        "bytes_moved": int(report.network_bytes),
        "completions": int(report.completions),
        "score": int(app.best_score),
    }


def run_served_warm(server, s1: str, s2: str, requests: int = 4) -> dict:
    """The serving path: prime the warm pool once, then time repeats.

    Submits the same SW job ``1 + requests`` times through a live
    :class:`~repro.serve.server.JobServer` with the result cache
    disabled, so every request recomputes on the server's warm place
    pool. The first (priming) request forks nothing if the pool is
    prewarmed but still pays first-touch costs (index caches, segment
    creation); the recorded ``seconds`` is the **median of the second
    and subsequent requests** — the steady-state latency a warm server
    delivers — with the prime kept alongside as ``seconds_first``.
    """
    import statistics

    body = {
        "app": "sw",
        "params": {"a": s1, "b": s2},
        "engine": "mp",
        "nplaces": NPLACES,
        "tile_shape": list(TILE),
        "cache": False,
    }
    times = []
    score = None
    for _ in range(1 + requests):
        with Timer() as t:
            status, payload = server.submit(dict(body))
            assert status == 202, (status, payload)
            job = server.wait(payload["id"], timeout=600.0)
        assert job["status"] == "done", job.get("error")
        score = job["result"]["score"]
        times.append(t.elapsed)
    pool = server.pool.stats()
    return {
        "seconds": round(statistics.median(times[1:]), 4),
        "seconds_first": round(times[0], 4),
        "requests": requests,
        "score": int(score),
        "pool_forks": pool.forks,
        "pool_leases": pool.leases,
    }


def run_matrix(sizes, served: bool = True) -> dict:
    """The full engine x size sweep, with cross-engine result checking."""
    from repro.serve.server import JobServer

    rng = seeded_rng(7, "bench-engines")
    doc = {
        "tile": list(TILE),
        "nplaces": NPLACES,
        "sizes": list(sizes),
        "engines": {label: {} for label in ENGINE_CONFIGS},
        "speedup_shm_vs_pipe": {},
        "speedup_auto_vs_hand": {},
        "speedup_warm_vs_cold": {},
    }
    if served:
        doc["engines"]["served_warm"] = {}
    # one server for the whole sweep: pool amortization across jobs is
    # exactly what the served_warm column measures
    server = JobServer(port=0, pool_capacity=NPLACES, prewarm=True) if served else None
    try:
        for size in sizes:
            s1, s2 = _random_dna(rng, size), _random_dna(rng, size)
            expect = None
            for label in ENGINE_CONFIGS:
                cell = run_cell(label, s1, s2)
                if expect is None:
                    expect = cell["score"]
                assert cell["score"] == expect, (label, size, cell["score"], expect)
                doc["engines"][label][str(size)] = cell
                print(
                    f"  {label:>11} {size:>5}^2  {cell['seconds']:8.3f}s  "
                    f"{cell['bytes_moved']:>12,} bytes moved",
                    flush=True,
                )
            pipe = doc["engines"]["mp_pipe"][str(size)]["seconds"]
            shm = doc["engines"]["mp_shm"][str(size)]["seconds"]
            auto = doc["engines"]["mp_shm_auto"][str(size)]["seconds"]
            doc["speedup_shm_vs_pipe"][str(size)] = round(pipe / shm, 2) if shm else None
            doc["speedup_auto_vs_hand"][str(size)] = (
                round(shm / auto, 2) if auto else None
            )
            if server is not None:
                cell = run_served_warm(server, s1, s2)
                assert cell["score"] == expect, ("served_warm", size, cell["score"])
                doc["engines"]["served_warm"][str(size)] = cell
                doc["speedup_warm_vs_cold"][str(size)] = (
                    round(shm / cell["seconds"], 2) if cell["seconds"] else None
                )
                print(
                    f"  {'served_warm':>11} {size:>5}^2  {cell['seconds']:8.3f}s  "
                    f"(first {cell['seconds_first']:.3f}s, "
                    f"{cell['pool_forks']} forks over "
                    f"{cell['pool_leases']} leases)",
                    flush=True,
                )
    finally:
        if server is not None:
            server.close()
    return doc


def run_native_check(threshold: float, e2e_threshold: float) -> int:
    """The autokernel acceptance gate: 2048^2 vs the hand-NumPy sweeps.

    Two ratios per app (see the module docstring for why they differ):
    the generated kernel driven over the whole matrix in one window must
    stay within ``threshold``x of the native sweep — that is the codegen
    promise — and the full ``mp_shm_auto`` run must reproduce the native
    matrix bit-for-bit within ``e2e_threshold``x, the documented bound
    on the tiled data plane's structural overhead (dispatch-round
    multiplication, Theta(cells) completion bookkeeping, wavefront
    parallelism capped at p^2/(2p-1)).
    """
    import numpy as np

    from repro.analysis.codegen import build_autokernel
    from repro.apps.edit_distance import EditDistanceApp
    from repro.apps.lcs import LCSApp
    from repro.apps.smith_waterman import SWApp
    from repro.core.runtime import DPX10Runtime
    from repro.native import edit_distance_native, lcs_native, sw_native
    from repro.patterns.diagonal import DiagonalDag

    rng = seeded_rng(7, "bench-native")
    n = NATIVE_SIZE
    s1, s2 = _random_dna(rng, n), _random_dna(rng, n)
    battery = {
        "sw": (SWApp, sw_native),
        "lcs": (LCSApp, lcs_native),
        "edit_distance": (EditDistanceApp, edit_distance_native),
    }
    failed = False
    for name, (app_cls, native) in battery.items():
        with Timer() as tn:
            want = native(s1, s2)

        # codegen promise: the emitted arithmetic, no framework
        app = app_cls(s1, s2)
        dag = DiagonalDag(n + 1, n + 1)
        kernel, _cls = build_autokernel(app, dag)
        window = np.zeros((n + 1, n + 1), dtype=app.value_dtype)
        with Timer() as tk:
            kernel.fn(0, 0, window, 0, 0, n + 1, n + 1)
        kernel_same = np.array_equal(window.astype(np.int64), want)
        kernel_ratio = tk.elapsed / tn.elapsed if tn.elapsed else float("inf")

        # the full data plane on top of the same kernel
        app = app_cls(s1, s2)
        dag = DiagonalDag(n + 1, n + 1)
        cfg = DPX10Config(
            nplaces=NPLACES,
            tile_shape=NATIVE_TILE,
            **ENGINE_CONFIGS["mp_shm_auto"],
        )
        with Timer() as tf:
            DPX10Runtime(app, dag, cfg).run()
        got = dag.to_array(fill=-1, dtype=np.int64)
        same = np.array_equal(got, want)
        ratio = tf.elapsed / tn.elapsed if tn.elapsed else float("inf")

        ok = (
            kernel_same
            and same
            and kernel_ratio <= threshold
            and ratio <= e2e_threshold
        )
        failed = failed or not ok
        print(
            f"  native gate {name:>14} {n}^2: "
            f"kernel {tk.elapsed:6.3f}s = {kernel_ratio:5.2f}x "
            f"(limit {threshold:.1f}x, values "
            f"{'identical' if kernel_same else 'DIFFER'}), "
            f"mp_shm_auto {tf.elapsed:6.3f}s = {ratio:5.2f}x "
            f"(limit {e2e_threshold:.1f}x, values "
            f"{'identical' if same else 'DIFFER'}) "
            f"vs native {tn.elapsed:6.3f}s -> {'OK' if ok else 'FAIL'}",
            flush=True,
        )
    return 1 if failed else 0


def check_regression(doc: dict, baseline_path: str, threshold: float) -> int:
    """Compare the gate cells against a committed baseline snapshot.

    Gates both the interpreted mp_shm cell and its autokernel twin, so a
    codegen change that slows the generated kernels fails CI the same
    way a transport change would. On top of the relative drift check,
    ``speedup_auto_vs_hand`` at the gate size must clear the absolute
    :data:`AUTO_VS_HAND_FLOOR` — the flat-sweep emission is required to
    hold at least half the hand-written kernel's throughput end to end.
    """
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    rc = 0
    auto = doc["speedup_auto_vs_hand"].get(str(GATE_SIZE))
    verdict = "OK" if auto is not None and auto >= AUTO_VS_HAND_FLOOR else "FAIL"
    print(
        f"perf gate [auto vs hand SW {GATE_SIZE}^2]: "
        f"{auto}x (floor {AUTO_VS_HAND_FLOOR}x) -> {verdict}"
    )
    if verdict != "OK":
        rc = 1
    for engine in (GATE_ENGINE, GATE_ENGINE + "_auto"):
        try:
            base_s = baseline["engines"][engine][str(GATE_SIZE)]["seconds"]
        except KeyError:
            print(f"baseline {baseline_path} has no {engine} {GATE_SIZE}^2 cell")
            rc = 1
            continue
        new_s = doc["engines"][engine][str(GATE_SIZE)]["seconds"]
        limit = base_s * (1.0 + threshold)
        verdict = "OK" if new_s <= limit else "REGRESSION"
        print(
            f"perf gate [{engine} SW {GATE_SIZE}^2]: "
            f"{new_s:.3f}s vs baseline {base_s:.3f}s "
            f"(limit {limit:.3f}s = +{threshold:.0%}) -> {verdict}"
        )
        if new_s > limit:
            rc = 1
    return rc


def write_snapshot(doc: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized matrix (256^2 and 512^2) that finishes in under a minute",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help="snapshot path (default: repo-root BENCH_engines.json)",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        metavar="BASELINE",
        help="committed snapshot to gate the mp shm SW 512^2 time against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional slowdown for --check-against (default 0.25)",
    )
    parser.add_argument(
        "--native-check",
        action="store_true",
        help="run the 2048^2 autokernel-vs-dp_native acceptance gate "
        "instead of the engine matrix",
    )
    parser.add_argument(
        "--native-threshold",
        type=float,
        default=2.0,
        help="allowed generated-kernel/native wall-time ratio (default 2.0)",
    )
    parser.add_argument(
        "--native-e2e-threshold",
        type=float,
        default=10.0,
        help="allowed full mp_shm_auto/native wall-time ratio "
        "(default 10.0; see module docstring for the decomposition)",
    )
    args = parser.parse_args(argv)

    if args.native_check:
        print(
            f"native gate: autokernel mp_shm {NATIVE_SIZE}^2 vs "
            "repro.native.dp_native"
        )
        return run_native_check(
            args.native_threshold, args.native_e2e_threshold
        )

    sizes = (256, 512) if args.quick else (256, 512, 1024)
    print(f"engine matrix: SW tiled {TILE[0]}x{TILE[1]}, sizes {list(sizes)}")
    doc = run_matrix(sizes)
    for size, speedup in doc["speedup_shm_vs_pipe"].items():
        print(f"mp shm vs pipe at {size}^2: {speedup:.2f}x")
    for size, speedup in doc["speedup_auto_vs_hand"].items():
        print(f"autokernel vs hand kernel (mp shm) at {size}^2: {speedup:.2f}x")
    for size, speedup in doc["speedup_warm_vs_cold"].items():
        print(f"warm server vs cold one-shot (mp shm) at {size}^2: {speedup:.2f}x")
    write_snapshot(doc, args.out)
    print(f"wrote {os.path.relpath(args.out)}")
    if args.check_against:
        return check_regression(doc, args.check_against, args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
