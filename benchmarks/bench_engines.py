"""Engine matrix benchmark: wall time and bytes moved, per engine per size.

The canonical output is ``BENCH_engines.json`` at the repo root — the
engine-level analogue of ``BENCH_obs.json``: one committed snapshot that
makes transport-level perf drift show up in review diffs. Each cell of
the matrix is a tiled Smith-Waterman run (the kernel-enabled app every
transport exercises hardest) recording wall seconds, cross-place bytes
moved, and completions for:

* ``inline``     — the deterministic single-thread scheduler
* ``threaded``   — one worker activity per place
* ``mp_pipe``    — process-per-place, pickled pipe data plane (``shm=False``)
* ``mp_shm``     — process-per-place, shared-memory vertex planes

Entry points:

* ``python benchmarks/bench_engines.py`` — full matrix (256/512/1024),
  refreshes ``BENCH_engines.json`` including the headline
  ``speedup_shm_vs_pipe`` numbers.
* ``python benchmarks/bench_engines.py --quick`` — CI-sized (256/512).
* ``--check-against BENCH_engines.json`` — regression gate: fails (exit
  1) if the mp shm SW 512x512 wall time regressed more than
  ``--threshold`` (default 25%) against the committed baseline.

The benchmark session also refreshes the snapshot via
``conftest.pytest_sessionfinish`` (set ``REPRO_SKIP_OBS_SNAPSHOT=1`` to
skip), mirroring how ``BENCH_obs.json`` stays current.
"""

import argparse
import json
import os
import sys

from repro.apps.smith_waterman import solve_sw
from repro.core.config import DPX10Config
from repro.util.rng import seeded_rng
from repro.util.timer import Timer

#: repo-root canonical snapshot (next to BENCH_obs.json)
DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_engines.json")

#: the regression gate pins this cell of the matrix
GATE_ENGINE = "mp_shm"
GATE_SIZE = 512

TILE = (64, 64)
NPLACES = 4

#: engine label -> DPX10Config kwargs
ENGINE_CONFIGS = {
    "inline": {"engine": "inline"},
    "threaded": {"engine": "threaded"},
    "mp_pipe": {"engine": "mp", "shm": False},
    "mp_shm": {"engine": "mp", "shm": True},
}


def _random_dna(rng, n: int) -> str:
    return "".join(rng.choice(list("ACGT"), size=n))


def run_cell(label: str, s1: str, s2: str) -> dict:
    """One (engine, size) cell: wall seconds, bytes moved, completions."""
    cfg = DPX10Config(nplaces=NPLACES, tile_shape=TILE, **ENGINE_CONFIGS[label])
    with Timer() as t:
        app, report = solve_sw(s1, s2, cfg)
    return {
        "seconds": round(t.elapsed, 4),
        "bytes_moved": int(report.network_bytes),
        "completions": int(report.completions),
        "score": int(app.best_score),
    }


def run_matrix(sizes) -> dict:
    """The full engine x size sweep, with cross-engine result checking."""
    rng = seeded_rng(7, "bench-engines")
    doc = {
        "tile": list(TILE),
        "nplaces": NPLACES,
        "sizes": list(sizes),
        "engines": {label: {} for label in ENGINE_CONFIGS},
        "speedup_shm_vs_pipe": {},
    }
    for size in sizes:
        s1, s2 = _random_dna(rng, size), _random_dna(rng, size)
        expect = None
        for label in ENGINE_CONFIGS:
            cell = run_cell(label, s1, s2)
            if expect is None:
                expect = cell["score"]
            assert cell["score"] == expect, (label, size, cell["score"], expect)
            doc["engines"][label][str(size)] = cell
            print(
                f"  {label:>9} {size:>5}^2  {cell['seconds']:8.3f}s  "
                f"{cell['bytes_moved']:>12,} bytes moved",
                flush=True,
            )
        pipe = doc["engines"]["mp_pipe"][str(size)]["seconds"]
        shm = doc["engines"]["mp_shm"][str(size)]["seconds"]
        doc["speedup_shm_vs_pipe"][str(size)] = round(pipe / shm, 2) if shm else None
    return doc


def check_regression(doc: dict, baseline_path: str, threshold: float) -> int:
    """Compare the gate cell against a committed baseline snapshot."""
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    try:
        base_s = baseline["engines"][GATE_ENGINE][str(GATE_SIZE)]["seconds"]
    except KeyError:
        print(f"baseline {baseline_path} has no {GATE_ENGINE} {GATE_SIZE}^2 cell")
        return 1
    new_s = doc["engines"][GATE_ENGINE][str(GATE_SIZE)]["seconds"]
    limit = base_s * (1.0 + threshold)
    verdict = "OK" if new_s <= limit else "REGRESSION"
    print(
        f"perf gate [{GATE_ENGINE} SW {GATE_SIZE}^2]: "
        f"{new_s:.3f}s vs baseline {base_s:.3f}s "
        f"(limit {limit:.3f}s = +{threshold:.0%}) -> {verdict}"
    )
    return 0 if new_s <= limit else 1


def write_snapshot(doc: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized matrix (256^2 and 512^2) that finishes in under a minute",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help="snapshot path (default: repo-root BENCH_engines.json)",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        metavar="BASELINE",
        help="committed snapshot to gate the mp shm SW 512^2 time against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional slowdown for --check-against (default 0.25)",
    )
    args = parser.parse_args(argv)

    sizes = (256, 512) if args.quick else (256, 512, 1024)
    print(f"engine matrix: SW tiled {TILE[0]}x{TILE[1]}, sizes {list(sizes)}")
    doc = run_matrix(sizes)
    for size, speedup in doc["speedup_shm_vs_pipe"].items():
        print(f"mp shm vs pipe at {size}^2: {speedup:.2f}x")
    write_snapshot(doc, args.out)
    print(f"wrote {os.path.relpath(args.out)}")
    if args.check_against:
        return check_regression(doc, args.check_against, args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
